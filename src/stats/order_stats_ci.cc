#include "stats/order_stats_ci.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace logmine::stats {

logmine::Result<MedianCi> MedianCiRanks(int64_t n, double level) {
  if (n < 1) {
    return logmine::Status::InvalidArgument("median CI requires n >= 1");
  }
  if (level <= 0.0 || level >= 1.0) {
    return logmine::Status::InvalidArgument("level must be in (0, 1)");
  }
  // Coverage of the symmetric interval [x_(j), x_(n+1-j)] is
  //   P(j <= #{X_i < m} <= n - j) = 1 - 2 * P(Bin(n, 1/2) <= j - 1).
  // Pick the largest j (tightest interval) whose coverage still reaches
  // `level`. Start from the normal approximation and walk to the exact
  // answer with BinomialCdf, which is exact for the sample sizes we use.
  const double z = NormalQuantile(0.5 + level / 2.0);
  int64_t j = static_cast<int64_t>(
      std::floor(static_cast<double>(n) / 2.0 -
                 z * std::sqrt(static_cast<double>(n)) / 2.0));
  j = std::max<int64_t>(j, 1);
  j = std::min(j, (n + 1) / 2);

  auto coverage_at = [n](int64_t jj) {
    return 1.0 - 2.0 * BinomialCdf(jj - 1, n, 0.5);
  };
  // Walk down until coverage suffices...
  while (j > 1 && coverage_at(j) < level) --j;
  if (coverage_at(j) < level) {
    return logmine::Status::InvalidArgument(
        "sample too small for the requested confidence level");
  }
  // ...then up as long as it still suffices.
  while (j + 1 <= (n + 1) / 2 && coverage_at(j + 1) >= level) ++j;

  MedianCi out;
  out.lower_rank = static_cast<int>(j);
  out.upper_rank = static_cast<int>(n + 1 - j);
  out.coverage = coverage_at(j);
  return out;
}

void FillMedianCiValues(std::span<double> xs, MedianCi* ci) {
  const size_t n = xs.size();
  // The ranks we need, ascending: lower_rank <= median rank(s) <=
  // upper_rank always holds (lower_rank <= (n+1)/2 by construction and
  // upper_rank mirrors it). Select each with nth_element restricted to
  // the suffix the previous selection left unpartitioned: after
  // selecting rank r, positions [0, r) hold the r smallest elements, so
  // the element of overall rank r' > r is the (r'-r)-th smallest of
  // [r, n) and nth_element may start there.
  size_t fixed = 0;  // every rank <= fixed is the last selected rank
  auto select = [&](size_t rank) {  // 1-based
    if (rank > fixed) {
      std::nth_element(xs.begin() + static_cast<ptrdiff_t>(fixed),
                       xs.begin() + static_cast<ptrdiff_t>(rank - 1),
                       xs.end());
      fixed = rank;
    }
    return xs[rank - 1];
  };
  ci->lower = select(static_cast<size_t>(ci->lower_rank));
  if (n % 2 == 1) {
    ci->median = select(n / 2 + 1);
  } else {
    const double lo_mid = select(n / 2);
    ci->median = 0.5 * (lo_mid + select(n / 2 + 1));
  }
  ci->upper = select(static_cast<size_t>(ci->upper_rank));
}

logmine::Result<MedianCi> MedianConfidenceIntervalInPlace(
    std::vector<double>* xs, double level) {
  auto ranks = MedianCiRanks(static_cast<int64_t>(xs->size()), level);
  if (!ranks.ok()) return ranks.status();
  MedianCi ci = ranks.value();
  FillMedianCiValues(*xs, &ci);
  return ci;
}

logmine::Result<MedianCi> MedianConfidenceInterval(std::vector<double> xs,
                                                   double level) {
  return MedianConfidenceIntervalInPlace(&xs, level);
}

}  // namespace logmine::stats
