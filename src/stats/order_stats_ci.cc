#include "stats/order_stats_ci.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace logmine::stats {

logmine::Result<MedianCi> MedianCiRanks(int64_t n, double level) {
  if (n < 1) {
    return logmine::Status::InvalidArgument("median CI requires n >= 1");
  }
  if (level <= 0.0 || level >= 1.0) {
    return logmine::Status::InvalidArgument("level must be in (0, 1)");
  }
  // Coverage of the symmetric interval [x_(j), x_(n+1-j)] is
  //   P(j <= #{X_i < m} <= n - j) = 1 - 2 * P(Bin(n, 1/2) <= j - 1).
  // Pick the largest j (tightest interval) whose coverage still reaches
  // `level`. Start from the normal approximation and walk to the exact
  // answer with BinomialCdf, which is exact for the sample sizes we use.
  const double z = NormalQuantile(0.5 + level / 2.0);
  int64_t j = static_cast<int64_t>(
      std::floor(static_cast<double>(n) / 2.0 -
                 z * std::sqrt(static_cast<double>(n)) / 2.0));
  j = std::max<int64_t>(j, 1);
  j = std::min(j, (n + 1) / 2);

  auto coverage_at = [n](int64_t jj) {
    return 1.0 - 2.0 * BinomialCdf(jj - 1, n, 0.5);
  };
  // Walk down until coverage suffices...
  while (j > 1 && coverage_at(j) < level) --j;
  if (coverage_at(j) < level) {
    return logmine::Status::InvalidArgument(
        "sample too small for the requested confidence level");
  }
  // ...then up as long as it still suffices.
  while (j + 1 <= (n + 1) / 2 && coverage_at(j + 1) >= level) ++j;

  MedianCi out;
  out.lower_rank = static_cast<int>(j);
  out.upper_rank = static_cast<int>(n + 1 - j);
  out.coverage = coverage_at(j);
  return out;
}

logmine::Result<MedianCi> MedianConfidenceInterval(std::vector<double> xs,
                                                   double level) {
  auto ranks = MedianCiRanks(static_cast<int64_t>(xs.size()), level);
  if (!ranks.ok()) return ranks.status();
  MedianCi ci = ranks.value();
  std::sort(xs.begin(), xs.end());
  ci.lower = xs[static_cast<size_t>(ci.lower_rank - 1)];
  ci.upper = xs[static_cast<size_t>(ci.upper_rank - 1)];
  const size_t n = xs.size();
  ci.median = n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  return ci;
}

}  // namespace logmine::stats
