#include "stats/association_tests.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace logmine::stats {
namespace {

// o * ln(o / e), with the conventional 0 * ln(0) = 0.
double Term(int64_t o, double e) {
  if (o == 0) return 0.0;
  return static_cast<double>(o) * std::log(static_cast<double>(o) / e);
}

}  // namespace

double DunningLogLikelihood(const Contingency2x2& table) {
  if (table.n() == 0) return 0.0;
  const double g2 = 2.0 * (Term(table.o11, table.e11()) +
                           Term(table.o12, table.e12()) +
                           Term(table.o21, table.e21()) +
                           Term(table.o22, table.e22()));
  // Guard against tiny negative values from floating-point cancellation.
  return g2 < 0.0 ? 0.0 : g2;
}

double PearsonChiSquare(const Contingency2x2& table) {
  if (table.n() == 0) return 0.0;
  double x2 = 0.0;
  const double e11 = table.e11(), e12 = table.e12();
  const double e21 = table.e21(), e22 = table.e22();
  if (e11 > 0) x2 += (table.o11 - e11) * (table.o11 - e11) / e11;
  if (e12 > 0) x2 += (table.o12 - e12) * (table.o12 - e12) / e12;
  if (e21 > 0) x2 += (table.o21 - e21) * (table.o21 - e21) / e21;
  if (e22 > 0) x2 += (table.o22 - e22) * (table.o22 - e22) / e22;
  return x2;
}

double PointwiseMutualInformation(const Contingency2x2& table) {
  if (table.o11 == 0 || table.e11() <= 0.0) return 0.0;
  return std::log2(static_cast<double>(table.o11) / table.e11());
}

double FisherExactPValue(const Contingency2x2& table) {
  const int64_t n = table.n();
  if (n == 0) return 1.0;
  const int64_t r1 = table.r1();
  const int64_t c1 = table.c1();
  // P(X = k) = C(c1, k) * C(n - c1, r1 - k) / C(n, r1), summed over the
  // upper tail k = o11 .. min(r1, c1); computed in log space.
  const int64_t k_max = std::min(r1, c1);
  const double log_denom = LogChoose(n, r1);
  double tail = 0.0;
  for (int64_t k = table.o11; k <= k_max; ++k) {
    if (r1 - k > n - c1) continue;  // infeasible cell
    const double log_p =
        LogChoose(c1, k) + LogChoose(n - c1, r1 - k) - log_denom;
    tail += std::exp(log_p);
  }
  return std::min(tail, 1.0);
}

double DiceCoefficient(const Contingency2x2& table) {
  const int64_t denom = table.r1() + table.c1();
  if (denom == 0) return 0.0;
  return 2.0 * static_cast<double>(table.o11) /
         static_cast<double>(denom);
}

double ZScore(const Contingency2x2& table) {
  const double e11 = table.e11();
  if (e11 <= 0.0) return 0.0;
  return (static_cast<double>(table.o11) - e11) / std::sqrt(e11);
}

double TScore(const Contingency2x2& table) {
  if (table.o11 == 0) return 0.0;
  return (static_cast<double>(table.o11) - table.e11()) /
         std::sqrt(static_cast<double>(table.o11));
}

double ChiSquarePValue(double score) { return ChiSquareSf(score, 1.0); }

bool IsSignificantAttraction(const Contingency2x2& table, double score,
                             double alpha) {
  return table.IsAttracted() && ChiSquarePValue(score) < alpha;
}

}  // namespace logmine::stats
