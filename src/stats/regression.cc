#include "stats/regression.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace logmine::stats {

logmine::Result<LinearFit> FitLinear(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     double level) {
  if (xs.size() != ys.size()) {
    return logmine::Status::InvalidArgument("x/y size mismatch");
  }
  const int n = static_cast<int>(xs.size());
  if (n < 3) {
    return logmine::Status::InvalidArgument("OLS needs at least 3 points");
  }
  if (level <= 0.0 || level >= 1.0) {
    return logmine::Status::InvalidArgument("level must be in (0, 1)");
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dx = xs[static_cast<size_t>(i)] - mx;
    const double dy = ys[static_cast<size_t>(i)] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return logmine::Status::InvalidArgument("x is constant; slope undefined");
  }

  LinearFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (int i = 0; i < n; ++i) {
    const double pred = fit.intercept + fit.slope * xs[static_cast<size_t>(i)];
    const double r = ys[static_cast<size_t>(i)] - pred;
    ss_res += r * r;
  }
  const double df = static_cast<double>(n - 2);
  const double sigma2 = ss_res / df;
  fit.residual_stddev = std::sqrt(sigma2);
  fit.slope_stderr = std::sqrt(sigma2 / sxx);
  fit.r_squared = syy <= 0.0 ? 1.0 : 1.0 - ss_res / syy;

  const double t = StudentTQuantile(0.5 + level / 2.0, df);
  fit.slope_ci_lo = fit.slope - t * fit.slope_stderr;
  fit.slope_ci_hi = fit.slope + t * fit.slope_stderr;
  return fit;
}

std::vector<double> Residuals(const LinearFit& fit,
                              const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  std::vector<double> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out[i] = ys[i] - (fit.intercept + fit.slope * xs[i]);
  }
  return out;
}

double QqNormalCorrelation(std::vector<double> residuals) {
  const size_t n = residuals.size();
  if (n < 3) return 0.0;
  std::sort(residuals.begin(), residuals.end());
  std::vector<double> quantiles(n);
  for (size_t i = 0; i < n; ++i) {
    // Blom plotting positions.
    const double p = (static_cast<double>(i) + 1.0 - 0.375) /
                     (static_cast<double>(n) + 0.25);
    quantiles[i] = NormalQuantile(p);
  }
  return PearsonCorrelation(residuals, quantiles);
}

}  // namespace logmine::stats
