#ifndef LOGMINE_STATS_HISTOGRAM_H_
#define LOGMINE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace logmine::stats {

/// Fixed-width histogram over [lo, hi); values outside the range are
/// counted in underflow/overflow.
class Histogram {
 public:
  /// Requires lo < hi and num_bins >= 1.
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);

  int64_t bin_count(int bin) const { return counts_[static_cast<size_t>(bin)]; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }

  /// Midpoint of `bin`.
  double bin_center(int bin) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

/// Counts events per fixed-width time bin over [begin, end): the series
/// behind the paper's figure 1 ("number of logs per second"). Events
/// outside the window are ignored. `bin_width` must be positive.
std::vector<int64_t> BinCountSeries(const std::vector<int64_t>& events,
                                    int64_t begin, int64_t end,
                                    int64_t bin_width);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_HISTOGRAM_H_
