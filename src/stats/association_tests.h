#ifndef LOGMINE_STATS_ASSOCIATION_TESTS_H_
#define LOGMINE_STATS_ASSOCIATION_TESTS_H_

#include "stats/contingency.h"

namespace logmine::stats {

/// Dunning's log-likelihood ratio statistic
///   G^2 = 2 * sum_ij o_ij * ln(o_ij / e_ij)
/// (terms with o_ij = 0 contribute 0). Asymptotically chi-square with
/// 1 degree of freedom, with far better behaviour than Pearson's X^2 on
/// the heavily skewed tables produced by log bigrams (Dunning 1993) —
/// the test the paper adopts for L2 via Evert's UCS toolkit.
double DunningLogLikelihood(const Contingency2x2& table);

/// Pearson's X^2 = sum_ij (o_ij - e_ij)^2 / e_ij, provided as the
/// classical baseline the paper compares against.
double PearsonChiSquare(const Contingency2x2& table);

/// Pointwise mutual information log2(o11 / e11); -inf-free: returns 0
/// when o11 = 0. Reported as a descriptive association measure.
double PointwiseMutualInformation(const Contingency2x2& table);

/// Fisher's exact one-sided p-value P(X >= o11) under the hypergeometric
/// null with fixed marginals — the exact reference the asymptotic tests
/// approximate (UCS provides it alongside log-likelihood).
double FisherExactPValue(const Contingency2x2& table);

/// Dice coefficient 2*o11 / (r1 + c1) in [0, 1].
double DiceCoefficient(const Contingency2x2& table);

/// z-score (o11 - e11) / sqrt(e11); 0 when e11 = 0.
double ZScore(const Contingency2x2& table);

/// t-score (o11 - e11) / sqrt(o11); 0 when o11 = 0.
double TScore(const Contingency2x2& table);

/// p-value of an association score that is asymptotically chi-square with
/// one degree of freedom (applies to both tests above).
double ChiSquarePValue(double score);

/// One-sided decision used by the L2 miner: the table shows *attraction*
/// (o11 > e11) and the score's p-value is below `alpha`.
bool IsSignificantAttraction(const Contingency2x2& table, double score,
                             double alpha);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_ASSOCIATION_TESTS_H_
