#ifndef LOGMINE_STATS_DISTRIBUTIONS_H_
#define LOGMINE_STATS_DISTRIBUTIONS_H_

#include <cstdint>

namespace logmine::stats {

/// log(n!) via lgamma.
double LogFactorial(int64_t n);

/// log of the binomial coefficient C(n, k).
double LogChoose(int64_t n, int64_t k);

/// Binomial(n, p) probability mass at k (computed in log space).
double BinomialPmf(int64_t k, int64_t n, double p);

/// P(X <= k) for X ~ Binomial(n, p). Exact summation for n <= 2000,
/// normal approximation with continuity correction above.
double BinomialCdf(int64_t k, int64_t n, double p);

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF (via erfc).
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Halley step; |relative error| < 1e-12). Requires 0 < p < 1.
double NormalQuantile(double p);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function P(X > x) for X ~ ChiSquare(df).
double ChiSquareSf(double x, double df);

/// Quantile of the chi-square distribution (bisection on the CDF).
double ChiSquareQuantile(double p, double df);

/// Regularized incomplete beta I_x(a, b), 0 <= x <= 1.
double RegularizedBeta(double x, double a, double b);

/// CDF of Student's t with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Quantile of Student's t (bisection; exact enough for CI construction).
double StudentTQuantile(double p, double df);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_DISTRIBUTIONS_H_
