#ifndef LOGMINE_STATS_ORDER_STATS_CI_H_
#define LOGMINE_STATS_ORDER_STATS_CI_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace logmine::stats {

/// A confidence interval for the median obtained from order statistics.
struct MedianCi {
  double lower = 0;     ///< value of the lower order statistic
  double upper = 0;     ///< value of the upper order statistic
  double median = 0;    ///< sample median
  int lower_rank = 0;   ///< 1-based rank j of the lower bound
  int upper_rank = 0;   ///< 1-based rank k of the upper bound
  double coverage = 0;  ///< achieved (conservative) confidence level
};

/// 1-based ranks (j, k) such that [x_(j), x_(k)] is a distribution-free
/// confidence interval for the median with coverage >= `level`, plus the
/// achieved coverage 1 - 2 * BinomialCdf(j - 1; n, 1/2).
///
/// This is the robust order-statistics method of Le Boudec used throughout
/// the paper: the only assumption is independence. For n = 7 and
/// level = 0.98 it returns (1, 7) with coverage 0.984375 — exactly the
/// "0.984 level" the paper reports for its 7 daily values.
///
/// Fails with InvalidArgument when no such interval exists, i.e. when even
/// [x_(1), x_(n)] has coverage < level (n too small).
logmine::Result<MedianCi> MedianCiRanks(int64_t n, double level);

/// Computes the interval on concrete data (copied and sorted internally).
logmine::Result<MedianCi> MedianConfidenceInterval(std::vector<double> xs,
                                                   double level);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_ORDER_STATS_CI_H_
