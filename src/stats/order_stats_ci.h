#ifndef LOGMINE_STATS_ORDER_STATS_CI_H_
#define LOGMINE_STATS_ORDER_STATS_CI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/result.h"

namespace logmine::stats {

/// A confidence interval for the median obtained from order statistics.
struct MedianCi {
  double lower = 0;     ///< value of the lower order statistic
  double upper = 0;     ///< value of the upper order statistic
  double median = 0;    ///< sample median
  int lower_rank = 0;   ///< 1-based rank j of the lower bound
  int upper_rank = 0;   ///< 1-based rank k of the upper bound
  double coverage = 0;  ///< achieved (conservative) confidence level
};

/// 1-based ranks (j, k) such that [x_(j), x_(k)] is a distribution-free
/// confidence interval for the median with coverage >= `level`, plus the
/// achieved coverage 1 - 2 * BinomialCdf(j - 1; n, 1/2).
///
/// This is the robust order-statistics method of Le Boudec used throughout
/// the paper: the only assumption is independence. For n = 7 and
/// level = 0.98 it returns (1, 7) with coverage 0.984375 — exactly the
/// "0.984 level" the paper reports for its 7 daily values.
///
/// Fails with InvalidArgument when no such interval exists, i.e. when even
/// [x_(1), x_(n)] has coverage < level (n too small).
logmine::Result<MedianCi> MedianCiRanks(int64_t n, double level);

/// Computes the interval on concrete data (copied internally).
logmine::Result<MedianCi> MedianConfidenceInterval(std::vector<double> xs,
                                                   double level);

/// In-place variant for hot loops (the L1 per-pair test runs two of
/// these per pair): no copy, and the three order statistics are selected
/// with `std::nth_element` in O(n) instead of a full O(n log n) sort.
/// `xs` is partially reordered. Identical values to the copying variant.
logmine::Result<MedianCi> MedianConfidenceIntervalInPlace(
    std::vector<double>* xs, double level);

/// Fills `ci->lower` / `ci->upper` / `ci->median` from `xs` given ranks
/// already computed by `MedianCiRanks(xs.size(), level)` — lets callers
/// that test many same-sized samples compute the ranks once and pay only
/// the O(n) selection per sample. `xs` is partially reordered.
/// Pre-condition: `ci` carries ranks valid for exactly `xs.size()`.
void FillMedianCiValues(std::span<double> xs, MedianCi* ci);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_ORDER_STATS_CI_H_
