#ifndef LOGMINE_STATS_DESCRIPTIVE_H_
#define LOGMINE_STATS_DESCRIPTIVE_H_

#include <vector>

namespace logmine::stats {

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n - 1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& xs);

/// Square root of `Variance`.
double Stddev(const std::vector<double>& xs);

/// Sample median (average of the two central order statistics for even n).
/// Requires a non-empty sample; the input is copied and sorted.
double Median(std::vector<double> xs);

/// Linear-interpolation quantile (type 7, the R default). `q` in [0, 1].
/// Requires a non-empty sample.
double Quantile(std::vector<double> xs, double q);

/// Five-number summary plus 1.5 IQR whiskers, as rendered in the paper's
/// figure 2 boxplots.
struct BoxplotStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double whisker_lo = 0;  ///< smallest value >= q1 - 1.5 IQR
  double whisker_hi = 0;  ///< largest value <= q3 + 1.5 IQR
  int num_outliers = 0;   ///< values outside the whiskers
};

/// Computes `BoxplotStats`. Requires a non-empty sample.
BoxplotStats Boxplot(std::vector<double> xs);

/// Sample skewness (g1, biased) — used for residual diagnostics.
double Skewness(const std::vector<double>& xs);

/// Excess kurtosis (g2, biased).
double ExcessKurtosis(const std::vector<double>& xs);

/// Pearson correlation between paired samples of equal, non-zero size.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_DESCRIPTIVE_H_
