#include "stats/distributions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace logmine::stats {
namespace {

constexpr double kEps = 1e-14;
constexpr int kMaxIterations = 500;

// std::lgamma writes the process-global `signgam`, a data race when
// the executor evaluates tail probabilities concurrently; the
// reentrant variant keeps the sign local.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(_GNU_SOURCE) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Lower incomplete gamma by power series; valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Upper incomplete gamma by Lentz continued fraction; valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for the regularized incomplete beta (Lentz).
double BetaContinuedFraction(double x, double a, double b) {
  const double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogFactorial(int64_t n) {
  assert(n >= 0);
  return LogGamma(static_cast<double>(n) + 1.0);
}

double LogChoose(int64_t n, int64_t k) {
  assert(n >= 0 && k >= 0 && k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialPmf(int64_t k, int64_t n, double p) {
  assert(n >= 0 && p >= 0.0 && p <= 1.0);
  if (k < 0 || k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogChoose(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int64_t k, int64_t n, double p) {
  assert(n >= 0 && p >= 0.0 && p <= 1.0);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  if (n <= 2000) {
    // Exact summation with the pmf recurrence carried in log space, so
    // pmf(0) = (1-p)^n may underflow without poisoning later terms:
    // log pmf(i+1) = log pmf(i) + log((n-i)/(i+1)) + log(p/(1-p)).
    if (p == 0.0) return 1.0;
    if (p == 1.0) return 0.0;
    const double log_ratio = std::log(p) - std::log1p(-p);
    double log_pmf = n * std::log1p(-p);  // log pmf(0)
    double cdf = std::exp(log_pmf);
    for (int64_t i = 0; i < k; ++i) {
      log_pmf += std::log(static_cast<double>(n - i) /
                          static_cast<double>(i + 1)) +
                 log_ratio;
      cdf += std::exp(log_pmf);
    }
    return std::min(cdf, 1.0);
  }
  // Normal approximation with continuity correction.
  const double mu = n * p;
  const double sigma = std::sqrt(n * p * (1.0 - p));
  return NormalCdf((static_cast<double>(k) + 0.5 - mu) / sigma);
}

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = NormalCdf(x) - p;
  const double u = e / NormalPdf(x);
  x -= u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSf(double x, double df) {
  assert(df > 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double ChiSquareQuantile(double p, double df) {
  assert(p >= 0.0 && p < 1.0);
  if (p == 0.0) return 0.0;
  double lo = 0.0;
  double hi = df + 10.0 * std::sqrt(2.0 * df) + 10.0;
  while (1.0 - ChiSquareSf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (1.0 - ChiSquareSf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double RegularizedBeta(double x, double a, double b) {
  assert(a > 0.0 && b > 0.0 && x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) -
                           LogGamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double StudentTCdf(double t, double df) {
  assert(df > 0.0);
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedBeta(x, df / 2.0, 0.5);
  return t > 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  assert(p > 0.0 && p < 1.0);
  if (p == 0.5) return 0.0;
  // Bracket with the normal quantile (t quantiles have heavier tails).
  double z = NormalQuantile(p);
  double lo = z - 1.0;
  double hi = z + 1.0;
  while (StudentTCdf(lo, df) > p) lo = lo * 2.0 - z;
  while (StudentTCdf(hi, df) < p) hi = hi * 2.0 - z;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace logmine::stats
