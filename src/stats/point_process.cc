#include "stats/point_process.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace logmine::stats {

int64_t NearestDistance(int64_t t, std::span<const int64_t> sorted_ref) {
  assert(!sorted_ref.empty());
  auto it = std::lower_bound(sorted_ref.begin(), sorted_ref.end(), t);
  int64_t best;
  if (it == sorted_ref.end()) {
    best = t - sorted_ref.back();
  } else {
    best = *it - t;
    if (it != sorted_ref.begin()) {
      best = std::min(best, t - *(it - 1));
    }
  }
  return best;
}

std::vector<double> DistancesToNearest(std::span<const int64_t> points,
                                       std::span<const int64_t> sorted_ref) {
  std::vector<double> out;
  out.reserve(points.size());
  for (int64_t p : points) {
    out.push_back(static_cast<double>(NearestDistance(p, sorted_ref)));
  }
  return out;
}

std::vector<int64_t> UniformPoints(int64_t begin, int64_t end, size_t count,
                                   logmine::Rng* rng) {
  assert(begin < end);
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(rng->UniformInt(begin, end - 1));
  }
  return out;
}

std::vector<int64_t> Subsample(std::span<const int64_t> points,
                               size_t max_count, logmine::Rng* rng) {
  if (points.size() <= max_count) return {points.begin(), points.end()};
  // Partial Fisher-Yates: draw max_count distinct elements.
  std::vector<int64_t> pool(points.begin(), points.end());
  for (size_t i = 0; i < max_count; ++i) {
    const size_t j = static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(i),
                        static_cast<int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(max_count);
  return pool;
}

namespace {

// Shared tail of both test variants: computes the distance samples and
// compares the median CIs one-sidedly.
MedianDistanceTestResult FinishTest(std::span<const int64_t> a,
                                    std::span<const int64_t> b_sample,
                                    std::span<const int64_t> reference,
                                    const MedianDistanceTestConfig& config) {
  MedianDistanceTestResult out;
  out.sample_random = DistancesToNearest(reference, a);
  out.sample_target = DistancesToNearest(b_sample, a);
  auto ci_r = MedianConfidenceInterval(out.sample_random, config.level);
  auto ci_b = MedianConfidenceInterval(out.sample_target, config.level);
  if (!ci_r.ok() || !ci_b.ok()) return out;  // samples too small
  out.ci_random = ci_r.value();
  out.ci_target = ci_b.value();
  out.positive = out.ci_target.upper < out.ci_random.lower;
  return out;
}

}  // namespace

MedianDistanceTestResult MedianDistanceTest(
    std::span<const int64_t> a, std::span<const int64_t> b,
    int64_t interval_begin, int64_t interval_end,
    const MedianDistanceTestConfig& config, logmine::Rng* rng) {
  if (a.empty() || b.empty() || interval_begin >= interval_end) return {};
  const std::vector<int64_t> random_points =
      UniformPoints(interval_begin, interval_end, config.sample_size, rng);
  const std::vector<int64_t> b_sample =
      Subsample(b, config.sample_size, rng);
  return FinishTest(a, b_sample, random_points, config);
}

MedianDistanceTestResult MedianDistanceTestWithBaseline(
    std::span<const int64_t> a, std::span<const int64_t> b,
    std::span<const int64_t> baseline_points, int64_t baseline_jitter,
    const MedianDistanceTestConfig& config, logmine::Rng* rng) {
  if (a.empty() || b.empty() || baseline_points.empty()) return {};
  std::vector<int64_t> reference =
      Subsample(baseline_points, config.sample_size, rng);
  if (baseline_jitter > 0) {
    for (int64_t& point : reference) {
      point += rng->UniformInt(-baseline_jitter, baseline_jitter);
    }
  }
  const std::vector<int64_t> b_sample =
      Subsample(b, config.sample_size, rng);
  return FinishTest(a, b_sample, reference, config);
}

}  // namespace logmine::stats
