#include "stats/point_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace logmine::stats {

int64_t NearestDistance(int64_t t, std::span<const int64_t> sorted_ref) {
  assert(!sorted_ref.empty());
  auto it = std::lower_bound(sorted_ref.begin(), sorted_ref.end(), t);
  int64_t best;
  if (it == sorted_ref.end()) {
    best = t - sorted_ref.back();
  } else {
    best = *it - t;
    if (it != sorted_ref.begin()) {
      best = std::min(best, t - *(it - 1));
    }
  }
  return best;
}

std::vector<double> DistancesToNearest(std::span<const int64_t> points,
                                       std::span<const int64_t> sorted_ref) {
  std::vector<double> out;
  out.reserve(points.size());
  for (int64_t p : points) {
    out.push_back(static_cast<double>(NearestDistance(p, sorted_ref)));
  }
  return out;
}

namespace {

// Shared merged-sweep body of the two DistancesToNearestSorted
// overloads; T is the output element type (the distances are integral,
// so double and int64_t outputs hold identical values).
template <typename T>
void DistancesToNearestSortedImpl(std::span<const int64_t> sorted_points,
                                  std::span<const int64_t> sorted_ref,
                                  std::vector<T>* out) {
  assert(!sorted_ref.empty());
  out->clear();
  out->reserve(sorted_points.size());
  // Both inputs ascend, so the reference element nearest to points[i+1]
  // is never left of the one nearest to points[i]: advance `j` while the
  // next reference element is at least as close as the current one.
  size_t j = 0;
  for (int64_t p : sorted_points) {
    while (j + 1 < sorted_ref.size() &&
           sorted_ref[j + 1] - p <= p - sorted_ref[j]) {
      ++j;
    }
    out->push_back(static_cast<T>(std::abs(sorted_ref[j] - p)));
  }
}

}  // namespace

void DistancesToNearestSorted(std::span<const int64_t> sorted_points,
                              std::span<const int64_t> sorted_ref,
                              std::vector<double>* out) {
  DistancesToNearestSortedImpl(sorted_points, sorted_ref, out);
}

void DistancesToNearestSorted(std::span<const int64_t> sorted_points,
                              std::span<const int64_t> sorted_ref,
                              std::vector<int64_t>* out) {
  DistancesToNearestSortedImpl(sorted_points, sorted_ref, out);
}

std::vector<double> DistancesToNearestSorted(
    std::span<const int64_t> sorted_points,
    std::span<const int64_t> sorted_ref) {
  std::vector<double> out;
  DistancesToNearestSorted(sorted_points, sorted_ref, &out);
  return out;
}

std::vector<int64_t> UniformPoints(int64_t begin, int64_t end, size_t count,
                                   logmine::Rng* rng) {
  assert(begin < end);
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(rng->UniformInt(begin, end - 1));
  }
  return out;
}

std::vector<int64_t> Subsample(std::span<const int64_t> points,
                               size_t max_count, logmine::Rng* rng) {
  if (points.size() <= max_count) return {points.begin(), points.end()};
  if (max_count == 0) return {};
  const size_t k = max_count;
  // Pools close to the sample size: selection sampling (Knuth's
  // algorithm S). One integer draw per pool element, no transcendental
  // math, and the sample comes out in pool order (sorted when the pool
  // is sorted — the common caller then skips its own sort's work).
  // Taking element i with probability (still needed) / (pool left)
  // makes every k-subset equally likely.
  if (points.size() <= 8 * k) {
    std::vector<int64_t> out;
    out.reserve(k);
    size_t needed = k;
    for (size_t i = 0; i < points.size() && needed > 0; ++i) {
      const auto left = static_cast<int64_t>(points.size() - i);
      if (rng->UniformInt(0, left - 1) <
          static_cast<int64_t>(needed)) {
        out.push_back(points[i]);
        --needed;
      }
    }
    return out;
  }
  // Much larger pools: reservoir sampling with random jumps (Li's
  // algorithm L): keep the first k elements, then skip geometrically
  // ahead and replace a random reservoir slot. Every k-subset of
  // positions is equally likely, no O(n) pool copy, and the expected
  // number of RNG draws is O(k (1 + log(n / k))).
  std::vector<int64_t> reservoir(points.begin(),
                                 points.begin() + static_cast<ptrdiff_t>(k));
  const double inv_k = 1.0 / static_cast<double>(k);
  // w is the running maximum of k uniforms; log(0) from an exactly-zero
  // draw degrades to an infinite skip (loop ends), never a crash.
  double w = std::exp(std::log(rng->Uniform()) * inv_k);
  size_t i = k - 1;
  while (true) {
    const double jump =
        std::floor(std::log(rng->Uniform()) / std::log1p(-w));
    // A huge jump (or inf from w rounding to 0 or the uniform drawing 0)
    // steps past the end; guard before converting to avoid UB.
    if (!(jump < static_cast<double>(points.size()))) break;
    i += static_cast<size_t>(jump) + 1;
    if (i >= points.size()) break;
    reservoir[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(k) - 1))] = points[i];
    w *= std::exp(std::log(rng->Uniform()) * inv_k);
  }
  return reservoir;
}

namespace {

// Shared tail of both test variants: computes the distance samples and
// compares the median CIs one-sidedly.
MedianDistanceTestResult FinishTest(std::span<const int64_t> a,
                                    std::span<const int64_t> b_sample,
                                    std::span<const int64_t> reference,
                                    const MedianDistanceTestConfig& config) {
  MedianDistanceTestResult out;
  out.sample_random = DistancesToNearest(reference, a);
  out.sample_target = DistancesToNearest(b_sample, a);
  auto ci_r = MedianConfidenceInterval(out.sample_random, config.level);
  auto ci_b = MedianConfidenceInterval(out.sample_target, config.level);
  if (!ci_r.ok() || !ci_b.ok()) return out;  // samples too small
  out.ci_random = ci_r.value();
  out.ci_target = ci_b.value();
  out.positive = out.ci_target.upper < out.ci_random.lower;
  return out;
}

}  // namespace

MedianDistanceTestResult MedianDistanceTest(
    std::span<const int64_t> a, std::span<const int64_t> b,
    int64_t interval_begin, int64_t interval_end,
    const MedianDistanceTestConfig& config, logmine::Rng* rng) {
  if (a.empty() || b.empty() || interval_begin >= interval_end) return {};
  const std::vector<int64_t> random_points =
      UniformPoints(interval_begin, interval_end, config.sample_size, rng);
  const std::vector<int64_t> b_sample =
      Subsample(b, config.sample_size, rng);
  return FinishTest(a, b_sample, random_points, config);
}

MedianDistanceTestResult MedianDistanceTestWithBaseline(
    std::span<const int64_t> a, std::span<const int64_t> b,
    std::span<const int64_t> baseline_points, int64_t baseline_jitter,
    const MedianDistanceTestConfig& config, logmine::Rng* rng) {
  if (a.empty() || b.empty() || baseline_points.empty()) return {};
  std::vector<int64_t> reference =
      Subsample(baseline_points, config.sample_size, rng);
  if (baseline_jitter > 0) {
    for (int64_t& point : reference) {
      point += rng->UniformInt(-baseline_jitter, baseline_jitter);
    }
  }
  const std::vector<int64_t> b_sample =
      Subsample(b, config.sample_size, rng);
  return FinishTest(a, b_sample, reference, config);
}

}  // namespace logmine::stats
