#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/distributions.h"

namespace logmine::stats {
namespace {

// Exact null distribution of W+ over all 2^n sign assignments, via the
// classic dynamic program on achievable rank sums. Ranks are 1..n
// (no ties). Returns P(W+ <= w) and P(W+ >= w).
void ExactTailProbabilities(int n, double w, double* p_leq, double* p_geq) {
  const int max_sum = n * (n + 1) / 2;
  // counts[s] = number of subsets of {1..n} with rank sum s.
  std::vector<double> counts(static_cast<size_t>(max_sum) + 1, 0.0);
  counts[0] = 1.0;
  for (int rank = 1; rank <= n; ++rank) {
    for (int s = max_sum; s >= rank; --s) {
      counts[static_cast<size_t>(s)] += counts[static_cast<size_t>(s - rank)];
    }
  }
  const double total = std::ldexp(1.0, n);  // 2^n
  double leq = 0.0, geq = 0.0;
  for (int s = 0; s <= max_sum; ++s) {
    if (s <= w + 1e-9) leq += counts[static_cast<size_t>(s)];
    if (s >= w - 1e-9) geq += counts[static_cast<size_t>(s)];
  }
  *p_leq = leq / total;
  *p_geq = geq / total;
}

}  // namespace

logmine::Result<WilcoxonResult> WilcoxonSignedRank(
    const std::vector<double>& diffs, Alternative alternative) {
  // Drop zeros.
  std::vector<double> d;
  d.reserve(diffs.size());
  for (double x : diffs) {
    if (x != 0.0) d.push_back(x);
  }
  if (d.empty()) {
    return logmine::Status::InvalidArgument(
        "signed-rank test needs at least one non-zero difference");
  }
  const int n = static_cast<int>(d.size());

  // Midranks of |d|.
  std::vector<size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::fabs(d[a]) < std::fabs(d[b]);
  });
  std::vector<double> ranks(d.size(), 0.0);
  bool has_ties = false;
  double tie_correction = 0.0;  // sum over tie groups of t^3 - t
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           std::fabs(d[order[j + 1]]) == std::fabs(d[order[i]])) {
      ++j;
    }
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1) {
      has_ties = true;
      tie_correction += t * t * t - t;
    }
    i = j + 1;
  }

  WilcoxonResult out;
  out.n_used = n;
  for (size_t k = 0; k < d.size(); ++k) {
    if (d[k] > 0) out.w_plus += ranks[k];
  }

  double p_leq, p_geq;
  if (!has_ties && n <= 25) {
    out.exact = true;
    ExactTailProbabilities(n, out.w_plus, &p_leq, &p_geq);
  } else {
    out.exact = false;
    const double mu = static_cast<double>(n) * (n + 1) / 4.0;
    const double var = static_cast<double>(n) * (n + 1) * (2 * n + 1) / 24.0 -
                       tie_correction / 48.0;
    const double sigma = std::sqrt(var);
    // Continuity correction of 0.5 toward the mean.
    p_leq = NormalCdf((out.w_plus - mu + 0.5) / sigma);
    p_geq = 1.0 - NormalCdf((out.w_plus - mu - 0.5) / sigma);
  }

  switch (alternative) {
    case Alternative::kTwoSided:
      out.p_value = std::min(1.0, 2.0 * std::min(p_leq, p_geq));
      break;
    case Alternative::kLess:  // small W+ => negative median
      out.p_value = p_leq;
      break;
    case Alternative::kGreater:
      out.p_value = p_geq;
      break;
  }
  return out;
}

logmine::Result<WilcoxonResult> WilcoxonSignedRankPaired(
    const std::vector<double>& xs, const std::vector<double>& ys,
    Alternative alternative) {
  if (xs.size() != ys.size()) {
    return logmine::Status::InvalidArgument(
        "paired test requires equal sample sizes");
  }
  std::vector<double> diffs(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) diffs[i] = xs[i] - ys[i];
  return WilcoxonSignedRank(diffs, alternative);
}

}  // namespace logmine::stats
