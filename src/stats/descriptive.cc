#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace logmine::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(n - 1);
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double Quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double h = q * (static_cast<double>(xs.size()) - 1.0);
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = static_cast<size_t>(std::ceil(h));
  return xs[lo] + (h - static_cast<double>(lo)) * (xs[hi] - xs[lo]);
}

BoxplotStats Boxplot(std::vector<double> xs) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  BoxplotStats out;
  out.min = xs.front();
  out.max = xs.back();
  out.q1 = Quantile(xs, 0.25);
  out.median = Quantile(xs, 0.5);
  out.q3 = Quantile(xs, 0.75);
  const double iqr = out.q3 - out.q1;
  const double lo_fence = out.q1 - 1.5 * iqr;
  const double hi_fence = out.q3 + 1.5 * iqr;
  out.whisker_lo = out.max;
  out.whisker_hi = out.min;
  for (double x : xs) {
    if (x >= lo_fence) {
      out.whisker_lo = std::min(out.whisker_lo, x);
      break;  // sorted: the first in-fence value is the whisker.
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      out.whisker_hi = *it;
      break;
    }
  }
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) ++out.num_outliers;
  }
  return out;
}

double Skewness(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mean = Mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double ExcessKurtosis(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mean = Mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && !xs.empty());
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace logmine::stats
