#include "stats/histogram.h"

#include <cassert>
#include <cmath>

namespace logmine::stats {

Histogram::Histogram(double lo, double hi, int num_bins) : lo_(lo) {
  assert(lo < hi && num_bins >= 1);
  width_ = (hi - lo) / num_bins;
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

void Histogram::Add(double x) {
  ++total_;
  const double offset = (x - lo_) / width_;
  if (offset < 0) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<size_t>(offset);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

double Histogram::bin_center(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<int64_t> BinCountSeries(const std::vector<int64_t>& events,
                                    int64_t begin, int64_t end,
                                    int64_t bin_width) {
  assert(begin < end && bin_width > 0);
  const auto num_bins =
      static_cast<size_t>((end - begin + bin_width - 1) / bin_width);
  std::vector<int64_t> counts(num_bins, 0);
  for (int64_t t : events) {
    if (t < begin || t >= end) continue;
    counts[static_cast<size_t>((t - begin) / bin_width)] += 1;
  }
  return counts;
}

}  // namespace logmine::stats
