#ifndef LOGMINE_STATS_POINT_PROCESS_H_
#define LOGMINE_STATS_POINT_PROCESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stats/order_stats_ci.h"
#include "util/rng.h"

namespace logmine::stats {

/// dist(t, A) = min_{a in A} |a - t| (equation 1 of the paper).
/// `sorted_ref` must be sorted ascending and non-empty.
///
/// All point sequences are taken as `std::span` views so the L1 miner
/// can pass slices of the store's sorted per-source index without
/// copying (a `std::vector<int64_t>` converts implicitly).
int64_t NearestDistance(int64_t t, std::span<const int64_t> sorted_ref);

/// Distances of every point in `points` to its nearest neighbour in
/// `sorted_ref` (sorted, non-empty). One binary search per point —
/// O(|points| log |ref|), no ordering requirement on `points`.
std::vector<double> DistancesToNearest(std::span<const int64_t> points,
                                       std::span<const int64_t> sorted_ref);

/// Merged-sweep variant: both inputs sorted ascending, `sorted_ref`
/// non-empty. A single two-pointer pass over both sequences —
/// O(|points| + |ref|) instead of O(|points| log |ref|) — and the L1
/// hot-path kernel (DESIGN.md §11). `out` is cleared and refilled, so a
/// caller in a loop reuses one buffer instead of allocating per call.
/// Produces exactly the same distances as `DistancesToNearest`.
void DistancesToNearestSorted(std::span<const int64_t> sorted_points,
                              std::span<const int64_t> sorted_ref,
                              std::vector<double>* out);

/// Integer-output variant of the merged sweep. Point distances are
/// integral, so the values are exactly the ones the double overload
/// yields; selecting order statistics on int64 avoids the
/// double-compare cost in the L1 hot path.
void DistancesToNearestSorted(std::span<const int64_t> sorted_points,
                              std::span<const int64_t> sorted_ref,
                              std::vector<int64_t>* out);

/// Allocating convenience overload of the merged sweep.
std::vector<double> DistancesToNearestSorted(
    std::span<const int64_t> sorted_points,
    std::span<const int64_t> sorted_ref);

/// Draws `count` points uniformly from [begin, end).
std::vector<int64_t> UniformPoints(int64_t begin, int64_t end, size_t count,
                                   logmine::Rng* rng);

/// Draws a subsample of at most `max_count` elements from `points`
/// (without replacement, order not preserved). Reservoir-based
/// (algorithm L): O(max_count) memory and O(max_count (1 + log(n/k)))
/// expected RNG draws — it never copies the whole candidate span into a
/// scratch pool, which is what makes per-slot subsampling cheap on
/// paper-scale slots.
std::vector<int64_t> Subsample(std::span<const int64_t> points,
                               size_t max_count, logmine::Rng* rng);

/// Configuration of the one-sided median-distance test.
struct MedianDistanceTestConfig {
  size_t sample_size = 200;  ///< size of both S_r and the S_b subsample
  double level = 0.95;       ///< confidence level of both median CIs
};

/// Outcome of one application of the test, with the quantities needed to
/// render the paper's figure 2 boxplots.
struct MedianDistanceTestResult {
  bool positive = false;  ///< CI_b entirely below CI_r => dependence
  MedianCi ci_random;     ///< CI for the median of S_r
  MedianCi ci_target;     ///< CI for the median of S_b
  std::vector<double> sample_random;  ///< S_r (distances)
  std::vector<double> sample_target;  ///< S_b (distances)
};

/// The core L1 test (§3.1): compares the typical distance of B's points to
/// A against the typical distance of uniformly random points to A, using
/// order-statistics confidence intervals for the median. One-sided:
/// positive iff upper(CI_b) < lower(CI_r).
///
/// `a` and `b` must be sorted ascending. Returns a negative (non-positive)
/// result when either sequence is empty or the samples are too small for
/// the requested level.
MedianDistanceTestResult MedianDistanceTest(
    std::span<const int64_t> a, std::span<const int64_t> b,
    int64_t interval_begin, int64_t interval_end,
    const MedianDistanceTestConfig& config, logmine::Rng* rng);

/// Variant with an explicit reference sample instead of uniform points —
/// the paper's §5 refinement: "use a non-homogenous process whose
/// intensity is proportional to the total number of logs". Pass (a
/// subsample of) the slot's all-source timestamps as `baseline_points`;
/// they are subsampled to `config.sample_size` and jittered by
/// +-`baseline_jitter` so that B's own logs do not trivially collide.
MedianDistanceTestResult MedianDistanceTestWithBaseline(
    std::span<const int64_t> a, std::span<const int64_t> b,
    std::span<const int64_t> baseline_points, int64_t baseline_jitter,
    const MedianDistanceTestConfig& config, logmine::Rng* rng);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_POINT_PROCESS_H_
