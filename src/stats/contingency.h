#ifndef LOGMINE_STATS_CONTINGENCY_H_
#define LOGMINE_STATS_CONTINGENCY_H_

#include <cstdint>
#include <string>

namespace logmine::stats {

/// A 2x2 contingency table over bigram observations, following Evert's UCS
/// terminology: for a pair type (A, B),
///
///            b = B     b != B
///   a = A     o11       o12
///   a != A    o21       o22
///
/// o11 is the joint frequency, r1 = o11 + o12 the frequency of A as first
/// element, c1 = o11 + o21 the frequency of B as second element, and
/// n the total number of bigrams (the sample size).
struct Contingency2x2 {
  int64_t o11 = 0;
  int64_t o12 = 0;
  int64_t o21 = 0;
  int64_t o22 = 0;

  int64_t r1() const { return o11 + o12; }
  int64_t r2() const { return o21 + o22; }
  int64_t c1() const { return o11 + o21; }
  int64_t c2() const { return o12 + o22; }
  int64_t n() const { return o11 + o12 + o21 + o22; }

  /// Expected frequencies under independence, e_ij = r_i * c_j / n.
  double e11() const;
  double e12() const;
  double e21() const;
  double e22() const;

  /// True when o11 exceeds its expectation — the association is positive
  /// (attraction); the collocation literature only accepts attracted pairs.
  bool IsAttracted() const;

  std::string ToString() const;
};

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_CONTINGENCY_H_
