#ifndef LOGMINE_STATS_REGRESSION_H_
#define LOGMINE_STATS_REGRESSION_H_

#include <vector>

#include "util/result.h"

namespace logmine::stats {

/// Ordinary least squares fit of y = intercept + slope * x, with the
/// t-based confidence interval for the slope used in the paper's load
/// experiment (§4.9): "we check if the confidence interval for the linear
/// factor is strictly negative [L1], respectively includes zero [L2]".
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double slope_stderr = 0;
  double slope_ci_lo = 0;
  double slope_ci_hi = 0;
  double r_squared = 0;
  double residual_stddev = 0;
  int n = 0;

  bool SlopeCiStrictlyNegative() const { return slope_ci_hi < 0.0; }
  bool SlopeCiContainsZero() const {
    return slope_ci_lo <= 0.0 && slope_ci_hi >= 0.0;
  }
};

/// Fits OLS on paired samples (size >= 3, x not constant); `level` is the
/// confidence level for the slope interval, e.g. 0.95.
logmine::Result<LinearFit> FitLinear(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     double level);

/// Residuals of a fit, for normal-QQ diagnostics ("the validity of the
/// regression model is verified by the means of normal qqplots for the
/// residuals").
std::vector<double> Residuals(const LinearFit& fit,
                              const std::vector<double>& xs,
                              const std::vector<double>& ys);

/// Correlation between sorted residuals and normal quantiles — the
/// numeric analogue of eyeballing a QQ plot; near 1 means "normal enough".
double QqNormalCorrelation(std::vector<double> residuals);

}  // namespace logmine::stats

#endif  // LOGMINE_STATS_REGRESSION_H_
