#include "stats/contingency.h"

#include <cstdio>

namespace logmine::stats {

double Contingency2x2::e11() const {
  return n() == 0 ? 0.0
                  : static_cast<double>(r1()) * static_cast<double>(c1()) /
                        static_cast<double>(n());
}

double Contingency2x2::e12() const {
  return n() == 0 ? 0.0
                  : static_cast<double>(r1()) * static_cast<double>(c2()) /
                        static_cast<double>(n());
}

double Contingency2x2::e21() const {
  return n() == 0 ? 0.0
                  : static_cast<double>(r2()) * static_cast<double>(c1()) /
                        static_cast<double>(n());
}

double Contingency2x2::e22() const {
  return n() == 0 ? 0.0
                  : static_cast<double>(r2()) * static_cast<double>(c2()) /
                        static_cast<double>(n());
}

bool Contingency2x2::IsAttracted() const {
  return static_cast<double>(o11) > e11();
}

std::string Contingency2x2::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[[%lld, %lld], [%lld, %lld]]",
                static_cast<long long>(o11), static_cast<long long>(o12),
                static_cast<long long>(o21), static_cast<long long>(o22));
  return buf;
}

}  // namespace logmine::stats
