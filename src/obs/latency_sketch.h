#ifndef LOGMINE_OBS_LATENCY_SKETCH_H_
#define LOGMINE_OBS_LATENCY_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace logmine {
class SnapshotWriter;
class SectionCursor;
}  // namespace logmine

namespace logmine::obs {

/// Mergeable bounded-relative-error quantile sketch (the DDSketch
/// scheme): values land in geometric buckets of ratio
/// gamma = (1 + alpha) / (1 - alpha), so any quantile estimate is
/// within `alpha` *relative* error of some actually-observed value —
/// p999 of a microsecond-to-minutes latency distribution is as accurate
/// as p50, which the log2 histograms (one power of two ≈ 100% error)
/// cannot offer.
///
/// Merge is bucket-wise integer addition: exact, associative and
/// commutative, so per-thread registry shards, per-shard sweep
/// durations and cross-process partials all combine into the same
/// sketch regardless of merge order or thread count — the same
/// contract `MergePartialModels` keeps for models.
///
/// Storage is a sparse (bucket index -> count) table that only holds
/// touched buckets; a latency stream spanning ns..hours touches a few
/// hundred. Not thread-safe: one writer, or external synchronization
/// (the registry wraps each shard's sketches in a short mutex).
class LatencySketch {
 public:
  /// Default relative accuracy: 1% — p99 of a 100 ms tail is within
  /// ±1 ms.
  static constexpr double kDefaultAlpha = 0.01;

  explicit LatencySketch(double alpha = kDefaultAlpha);

  /// Records one value. Values <= 0 land in the exact zero bucket
  /// (negative durations are clock noise; they count as 0).
  void Observe(int64_t value);

  /// Adds `other`'s observations into this sketch. Precondition: equal
  /// alpha (checked; a mismatched merge is dropped and returns false —
  /// mixing error models silently would corrupt the bound).
  bool Merge(const LatencySketch& other);

  /// The value at quantile `q` in [0, 1], within `alpha` relative
  /// error of the exact empirical quantile. 0 when empty. Exact for
  /// the zero bucket, and clamped to [min, max] so a lone observation
  /// reports itself.
  int64_t Quantile(double q) const;

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double alpha() const { return alpha_; }
  /// Touched buckets (the sparse table's size), for memory accounting.
  size_t num_buckets() const { return buckets_.size(); }

  void Clear();

  /// Snapshot-container round-trip (util/snapshot.h), so sketches ride
  /// postmortem bundles and shipped partials.
  void Encode(SnapshotWriter* writer) const;
  static bool Decode(SectionCursor* cursor, LatencySketch* out);

 private:
  /// Bucket index of a positive value: ceil(log(v) / log(gamma)),
  /// computed in double precision (exactness of the *count* is what
  /// matters; the bucket boundary itself only needs to respect gamma).
  int32_t IndexOf(int64_t value) const;
  /// Representative value of bucket `index`: 2 * gamma^index / (gamma
  /// + 1), the midpoint minimizing worst-case relative error.
  int64_t ValueOf(int32_t index) const;

  double alpha_;
  double log_gamma_;  ///< ln(gamma), cached
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t zero_count_ = 0;
  /// Sorted sparse (index, count) pairs; sorted keeps quantile walks
  /// and merges linear.
  std::vector<std::pair<int32_t, int64_t>> buckets_;
};

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_LATENCY_SKETCH_H_
