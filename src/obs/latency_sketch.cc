#include "obs/latency_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/snapshot.h"

namespace logmine::obs {

LatencySketch::LatencySketch(double alpha) : alpha_(alpha) {
  if (!(alpha_ > 0.0) || alpha_ >= 1.0) alpha_ = kDefaultAlpha;
  log_gamma_ = std::log((1.0 + alpha_) / (1.0 - alpha_));
}

int32_t LatencySketch::IndexOf(int64_t value) const {
  // value >= 1 here (0 and negatives take the zero bucket).
  return static_cast<int32_t>(
      std::ceil(std::log(static_cast<double>(value)) / log_gamma_));
}

int64_t LatencySketch::ValueOf(int32_t index) const {
  const double gamma = std::exp(log_gamma_);
  const double v =
      2.0 * std::exp(static_cast<double>(index) * log_gamma_) / (gamma + 1.0);
  if (v >= 9.2e18) return INT64_MAX;
  return static_cast<int64_t>(std::llround(v));
}

void LatencySketch::Observe(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value == 0) {
    ++zero_count_;
    return;
  }
  const int32_t index = IndexOf(value);
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const std::pair<int32_t, int64_t>& b, int32_t i) { return b.first < i; });
  if (it != buckets_.end() && it->first == index) {
    ++it->second;
  } else {
    buckets_.insert(it, {index, 1});
  }
}

bool LatencySketch::Merge(const LatencySketch& other) {
  if (other.count_ == 0) return true;
  if (alpha_ != other.alpha_) return false;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  // Sorted two-way merge, summing counts on equal indices.
  std::vector<std::pair<int32_t, int64_t>> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  size_t a = 0, b = 0;
  while (a < buckets_.size() || b < other.buckets_.size()) {
    if (b >= other.buckets_.size() ||
        (a < buckets_.size() && buckets_[a].first < other.buckets_[b].first)) {
      merged.push_back(buckets_[a++]);
    } else if (a >= buckets_.size() ||
               other.buckets_[b].first < buckets_[a].first) {
      merged.push_back(other.buckets_[b++]);
    } else {
      merged.push_back({buckets_[a].first,
                        buckets_[a].second + other.buckets_[b].second});
      ++a;
      ++b;
    }
  }
  buckets_ = std::move(merged);
  return true;
}

int64_t LatencySketch::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over zero bucket then ascending geometric buckets.
  const int64_t rank = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))), 1,
      count_);
  if (rank <= zero_count_) return 0;
  int64_t seen = zero_count_;
  for (const auto& [index, bucket_count] : buckets_) {
    seen += bucket_count;
    if (seen >= rank) {
      return std::clamp(ValueOf(index), min_, max_);
    }
  }
  return max_;
}

void LatencySketch::Clear() {
  count_ = sum_ = min_ = max_ = zero_count_ = 0;
  buckets_.clear();
}

void LatencySketch::Encode(SnapshotWriter* writer) const {
  writer->PutDouble(alpha_);
  writer->PutI64(count_);
  writer->PutI64(sum_);
  writer->PutI64(min_);
  writer->PutI64(max_);
  writer->PutI64(zero_count_);
  writer->PutU64(buckets_.size());
  for (const auto& [index, bucket_count] : buckets_) {
    writer->PutI64(index);
    writer->PutI64(bucket_count);
  }
}

bool LatencySketch::Decode(SectionCursor* cursor, LatencySketch* out) {
  auto alpha = cursor->ReadDouble();
  if (!alpha.ok()) return false;
  LatencySketch sketch(alpha.value());
  auto read = [&](int64_t* slot) {
    auto v = cursor->ReadI64();
    if (!v.ok()) return false;
    *slot = v.value();
    return true;
  };
  if (!read(&sketch.count_) || !read(&sketch.sum_) || !read(&sketch.min_) ||
      !read(&sketch.max_) || !read(&sketch.zero_count_)) {
    return false;
  }
  auto n = cursor->ReadU64();
  if (!n.ok()) return false;
  sketch.buckets_.reserve(n.value());
  int32_t previous_index = INT32_MIN;
  for (uint64_t i = 0; i < n.value(); ++i) {
    int64_t index = 0, bucket_count = 0;
    if (!read(&index) || !read(&bucket_count)) return false;
    if (index <= previous_index || bucket_count < 0) return false;  // corrupt
    previous_index = static_cast<int32_t>(index);
    sketch.buckets_.push_back(
        {static_cast<int32_t>(index), bucket_count});
  }
  *out = std::move(sketch);
  return true;
}

}  // namespace logmine::obs
