#ifndef LOGMINE_OBS_POSTMORTEM_H_
#define LOGMINE_OBS_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace logmine::obs {

class ObsContext;

/// Knobs of the dump-on-failure path.
struct PostmortemOptions {
  /// Directory bundles are written into (created if absent). Empty
  /// disables bundling — triggers become no-ops.
  std::string dir;
  /// Most-recent trace events captured (rendered as Chrome trace JSON).
  size_t max_trace_events = 2048;
  /// Journal tail lines captured.
  size_t journal_tail = 128;
};

/// Everything needed to debug a failure after the process is gone: the
/// last-N trace events, the merged metrics snapshot, the journal tail,
/// per-stage resource usage, and the config fingerprint of the run —
/// one CRC-protected snapshot-container file per trigger.
struct PostmortemBundle {
  /// Container payload version (bundles, like checkpoints, refuse to
  /// parse across incompatible layouts).
  static constexpr uint32_t kVersion = 1;

  std::string run_id;
  /// Machine-readable trigger, e.g. "sweep_degraded", "sweep_failed",
  /// "health_regression", "chaos_fault", "crash_mid_publish".
  std::string reason;
  /// Hierarchical span id of the failing unit ("sweep-1/d0.r2/a3").
  std::string trigger_span;
  /// Hash of the run's configuration (e.g. L1SweepStateHash), so a
  /// bundle can be matched to the exact config that produced it.
  uint64_t config_fingerprint = 0;
  int64_t captured_at_ns = 0;

  std::string metrics_json;           ///< MetricsSnapshot::ToJson
  std::string probe_json;             ///< ResourceProbe::ToJson
  std::string trace_json;             ///< TraceRecorder::ToChromeTraceJson
  std::vector<std::string> journal_tail;  ///< rendered JSONL lines
};

/// Writes `bundle` into `options.dir` as
/// `postmortem-<run_id>-<seq>.lmpm` (atomic tmp+rename; CRC footer via
/// the snapshot container). Returns the path written.
Result<std::string> WritePostmortemBundle(const PostmortemOptions& options,
                                          const PostmortemBundle& bundle);

/// Parses a bundle file; CRC or layout damage is a ParseError.
Result<PostmortemBundle> ReadPostmortemBundle(const std::string& path);

/// Captures a bundle from a live context (metrics, probe, trace,
/// journal tail) and writes it. The convenience entry point every
/// trigger site uses; returns the path, or NotFound when bundling is
/// disabled (empty dir). Also journals a "postmortem" event and bumps
/// the postmortem.bundles_written counter on success.
Result<std::string> CapturePostmortem(const PostmortemOptions& options,
                                      ObsContext* context,
                                      std::string_view reason,
                                      std::string_view trigger_span,
                                      uint64_t config_fingerprint);

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_POSTMORTEM_H_
