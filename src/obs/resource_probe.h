#ifndef LOGMINE_OBS_RESOURCE_PROBE_H_
#define LOGMINE_OBS_RESOURCE_PROBE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace logmine::obs {

/// One point-in-time reading of the process's resource usage. All
/// fields are cumulative counters except the RSS readings.
struct ResourceSample {
  int64_t wall_ns = 0;           ///< MonotonicNowNs at sampling
  int64_t user_cpu_ns = 0;       ///< getrusage ru_utime, whole process
  int64_t system_cpu_ns = 0;     ///< getrusage ru_stime, whole process
  int64_t thread_cpu_ns = 0;     ///< CLOCK_THREAD_CPUTIME_ID, this thread
  int64_t max_rss_kb = 0;        ///< high-water mark (ru_maxrss)
  int64_t current_rss_kb = 0;    ///< /proc/self/statm; 0 where absent
  int64_t voluntary_switches = 0;
  int64_t involuntary_switches = 0;

  static ResourceSample Now();
};

/// Accumulated usage of one named stage across its invocations.
struct StageUsage {
  std::string stage;
  int64_t invocations = 0;
  int64_t wall_ns = 0;
  int64_t user_cpu_ns = 0;
  int64_t system_cpu_ns = 0;
  int64_t thread_cpu_ns = 0;
  int64_t peak_rss_kb = 0;       ///< max over invocation end samples
  int64_t rss_growth_kb = 0;     ///< summed positive current-RSS deltas
  int64_t involuntary_switches = 0;
};

/// Per-stage resource profiler: each instrumented stage (a miner, a
/// sweep shard batch, a publish) records begin/end `ResourceSample`s
/// and the probe accumulates the deltas by stage name. CPU time and RSS
/// answer the question metrics latencies cannot: *where the machine
/// went* — a stage with high wall but low CPU is waiting (see the
/// executor.queue_wait_ns sketch for on-queue time), one with high
/// system time is thrashing I/O, one with RSS growth is the leak.
///
/// Thread-safe; stages may overlap and nest freely (process-wide CPU
/// deltas then overlap too — the table is attribution, not a disjoint
/// partition).
class ResourceProbe {
 public:
  ResourceProbe() = default;
  ResourceProbe(const ResourceProbe&) = delete;
  ResourceProbe& operator=(const ResourceProbe&) = delete;

  void RecordStage(std::string_view stage, const ResourceSample& begin,
                   const ResourceSample& end);

  /// All stages, in first-recorded order.
  std::vector<StageUsage> Stages() const;

  /// {"stages":[{"stage":..,"invocations":..,"wall_ns":..,...}]}
  std::string ToJson() const;

  /// RAII recorder; a null probe makes it a no-op.
  class ScopedStage {
   public:
    ScopedStage(ResourceProbe* probe, std::string_view stage)
        : probe_(probe),
          stage_(stage),
          begin_(probe != nullptr ? ResourceSample::Now()
                                  : ResourceSample{}) {}
    ~ScopedStage() {
      if (probe_ != nullptr) {
        probe_->RecordStage(stage_, begin_, ResourceSample::Now());
      }
    }
    ScopedStage(const ScopedStage&) = delete;
    ScopedStage& operator=(const ScopedStage&) = delete;

   private:
    ResourceProbe* probe_;
    std::string stage_;
    ResourceSample begin_;
  };

 private:
  mutable std::mutex mu_;
  std::vector<StageUsage> stages_;
};

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_RESOURCE_PROBE_H_
