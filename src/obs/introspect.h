#ifndef LOGMINE_OBS_INTROSPECT_H_
#define LOGMINE_OBS_INTROSPECT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/result.h"

namespace logmine::obs {

class ObsContext;

/// What the introspection server serves. Every handler runs on the
/// server thread, so it must be thread-safe against the process's
/// workers (snapshots, journal tails and health reads already are).
struct IntrospectionHandlers {
  /// Human-oriented status page (plain text, multi-line).
  std::function<std::string()> statusz;
  /// OpenMetrics/Prometheus text exposition.
  std::function<std::string()> metrics;
  /// One-line health summary, e.g. "healthy generation=12 staleness=0".
  std::function<std::string()> health;
  /// The newest `n` journal lines, oldest first.
  std::function<std::vector<std::string>(size_t)> journal_tail;
};

/// Live introspection endpoint: a poll()-based AF_UNIX line-protocol
/// server, the first wire surface of the serving layer. One request per
/// line, response is the payload followed by a line holding a single
/// "." (the SMTP/NNTP framing — trivially scriptable with socat or nc):
///
///   $ echo METRICS | socat - UNIX-CONNECT:/tmp/logmine.sock
///
/// Commands: STATUSZ | METRICS | HEALTH | JOURNAL TAIL <n>. Unknown
/// commands answer "ERR unknown command". The server owns one
/// background thread; Stop() (or destruction) joins it and removes the
/// socket file.
class IntrospectionServer {
 public:
  /// Binds `socket_path` (an existing stale socket file is replaced)
  /// and starts serving. sun_path limits the path to ~100 bytes.
  static Result<std::unique_ptr<IntrospectionServer>> Start(
      const std::string& socket_path, IntrospectionHandlers handlers);

  ~IntrospectionServer();
  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  void Stop();
  const std::string& socket_path() const { return socket_path_; }
  /// Requests answered so far (any command, including errors).
  uint64_t requests_served() const;

 private:
  IntrospectionServer(std::string socket_path,
                      IntrospectionHandlers handlers, int listen_fd,
                      int wake_read_fd, int wake_write_fd);
  void Serve();
  std::string HandleRequest(const std::string& line);

  const std::string socket_path_;
  IntrospectionHandlers handlers_;
  int listen_fd_;
  int wake_read_fd_;   ///< self-pipe: Stop() writes, poll loop wakes
  int wake_write_fd_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

/// Handlers over one ObsContext: STATUSZ renders the non-zero metric
/// table plus per-stage resource usage, METRICS the OpenMetrics text,
/// JOURNAL TAIL the context's journal. `health` is service-specific;
/// when null the endpoint reports "ok". The context must outlive the
/// server.
IntrospectionHandlers MakeObsHandlers(
    ObsContext* context, std::function<std::string()> health = nullptr);

/// Client-side one-shot helper (used by tests and the example's scrape
/// thread): connects, sends `request` + "\n", reads until the "."
/// terminator, returns the payload without the terminator.
Result<std::string> IntrospectionQuery(const std::string& socket_path,
                                       const std::string& request);

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_INTROSPECT_H_
