#ifndef LOGMINE_OBS_EXPORT_H_
#define LOGMINE_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace logmine::obs {

/// Rendering knobs for the OpenMetrics/Prometheus text exporter.
struct OpenMetricsOptions {
  /// Prepended to every mangled metric name.
  std::string prefix = "logmine_";
  /// Emit zero-valued series too (scrapers usually want a stable set;
  /// the human-facing introspection endpoint trims them).
  bool include_zero = true;
};

/// Mangles an internal metric name into a legal Prometheus metric name:
/// every character outside [a-zA-Z0-9_] becomes '_' ("serve.query_ns"
/// -> "serve_query_ns"), and a leading digit gains a '_' prefix. The
/// exporter prepends its prefix after mangling.
std::string MangleMetricName(std::string_view name);

/// Renders a snapshot in the Prometheus text exposition format
/// (text/plain; version 0.0.4, accepted by Prometheus and every
/// OpenMetrics scraper):
///  - counters as `<name>_total`,
///  - gauges plain,
///  - log2 histograms as classic histograms (`_bucket{le="..."}`
///    cumulative series, `_sum`, `_count`),
///  - latency sketches as summaries (`{quantile="0.5|0.9|0.99|0.999"}`
///    plus `_sum`/`_count`) — quantiles carry the sketch's alpha bound.
std::string ToOpenMetrics(const MetricsSnapshot& snapshot,
                          const OpenMetricsOptions& options = {});

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_EXPORT_H_
