#include "obs/postmortem.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <atomic>

#include "obs/obs.h"
#include "util/snapshot.h"

namespace logmine::obs {
namespace {

std::atomic<uint64_t> g_bundle_seq{0};

// Renders the newest `max_events` trace events as Chrome trace JSON —
// TraceRecorder::ToChromeTraceJson dumps the whole ring; a postmortem
// wants the tail.
std::string TraceTailJson(const TraceRecorder& trace, size_t max_events) {
  const std::vector<TraceEvent> events = trace.Events();
  const size_t begin =
      events.size() > max_events ? events.size() - max_events : 0;
  std::string out = "{\"traceEvents\":[";
  for (size_t i = begin; i < events.size(); ++i) {
    if (i > begin) out += ',';
    const TraceEvent& event = events[i];
    out += "{\"name\":\"";
    for (const char* c = event.name; *c != '\0'; ++c) {
      if (*c == '"' || *c == '\\') out += '\\';
      out += *c;
    }
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
           ",\"ts\":" + std::to_string(event.start_ns / 1000) +
           ",\"dur\":" + std::to_string(event.dur_ns / 1000) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

Result<std::string> WritePostmortemBundle(const PostmortemOptions& options,
                                          const PostmortemBundle& bundle) {
  if (options.dir.empty()) {
    return Status::NotFound("postmortem bundling disabled (no dir)");
  }
  ::mkdir(options.dir.c_str(), 0777);  // best-effort; write reports failure

  SnapshotWriter writer;
  writer.BeginSection("meta");
  writer.PutU32(PostmortemBundle::kVersion);
  writer.PutString(bundle.run_id);
  writer.PutString(bundle.reason);
  writer.PutString(bundle.trigger_span);
  writer.PutU64(bundle.config_fingerprint);
  writer.PutI64(bundle.captured_at_ns);
  writer.EndSection();
  writer.BeginSection("metrics");
  writer.PutString(bundle.metrics_json);
  writer.EndSection();
  writer.BeginSection("probe");
  writer.PutString(bundle.probe_json);
  writer.EndSection();
  writer.BeginSection("trace");
  writer.PutString(bundle.trace_json);
  writer.EndSection();
  writer.BeginSection("journal");
  writer.PutU64(bundle.journal_tail.size());
  for (const std::string& line : bundle.journal_tail) {
    writer.PutString(line);
  }
  writer.EndSection();

  const uint64_t seq =
      g_bundle_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string path = options.dir + "/postmortem-" + bundle.run_id +
                           "-" + std::to_string(seq) + ".lmpm";
  LOGMINE_RETURN_IF_ERROR(
      WriteSnapshotFile(path, std::move(writer).Finish()));
  return path;
}

Result<PostmortemBundle> ReadPostmortemBundle(const std::string& path) {
  LOGMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  LOGMINE_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Parse(std::move(bytes)));
  PostmortemBundle bundle;
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor meta, reader.Section("meta"));
  LOGMINE_ASSIGN_OR_RETURN(const uint32_t version, meta.ReadU32());
  if (version != PostmortemBundle::kVersion) {
    return Status::FailedPrecondition(
        "postmortem bundle version " + std::to_string(version) +
        " != " + std::to_string(PostmortemBundle::kVersion));
  }
  LOGMINE_ASSIGN_OR_RETURN(bundle.run_id, meta.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(bundle.reason, meta.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(bundle.trigger_span, meta.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(bundle.config_fingerprint, meta.ReadU64());
  LOGMINE_ASSIGN_OR_RETURN(bundle.captured_at_ns, meta.ReadI64());
  LOGMINE_RETURN_IF_ERROR(meta.ExpectEnd());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor metrics, reader.Section("metrics"));
  LOGMINE_ASSIGN_OR_RETURN(bundle.metrics_json, metrics.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor probe, reader.Section("probe"));
  LOGMINE_ASSIGN_OR_RETURN(bundle.probe_json, probe.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor trace, reader.Section("trace"));
  LOGMINE_ASSIGN_OR_RETURN(bundle.trace_json, trace.ReadString());
  LOGMINE_ASSIGN_OR_RETURN(SectionCursor journal, reader.Section("journal"));
  LOGMINE_ASSIGN_OR_RETURN(const uint64_t lines, journal.ReadU64());
  bundle.journal_tail.reserve(lines);
  for (uint64_t i = 0; i < lines; ++i) {
    LOGMINE_ASSIGN_OR_RETURN(std::string line, journal.ReadString());
    bundle.journal_tail.push_back(std::move(line));
  }
  LOGMINE_RETURN_IF_ERROR(journal.ExpectEnd());
  return bundle;
}

Result<std::string> CapturePostmortem(const PostmortemOptions& options,
                                      ObsContext* context,
                                      std::string_view reason,
                                      std::string_view trigger_span,
                                      uint64_t config_fingerprint) {
  if (options.dir.empty()) {
    return Status::NotFound("postmortem bundling disabled (no dir)");
  }
  PostmortemBundle bundle;
  bundle.reason = std::string(reason);
  bundle.trigger_span = std::string(trigger_span);
  bundle.config_fingerprint = config_fingerprint;
  bundle.captured_at_ns = MonotonicNowNs();
  if (context != nullptr) {
    bundle.run_id = context->journal().run_id();
    bundle.metrics_json = context->metrics().Snapshot().ToJson();
    bundle.probe_json = context->probe().ToJson();
    bundle.trace_json =
        TraceTailJson(context->trace(), options.max_trace_events);
    bundle.journal_tail = context->journal().Tail(options.journal_tail);
  } else {
    bundle.run_id = "no-context";
  }
  LOGMINE_ASSIGN_OR_RETURN(std::string path,
                           WritePostmortemBundle(options, bundle));
  if (context != nullptr) {
    context->journal().Emit(
        trigger_span, "postmortem",
        {JournalField::Str("reason", reason),
         JournalField::Str("bundle", path)});
    context->metrics().Add(Metric::kPostmortemBundlesWritten, 1);
  }
  return path;
}

}  // namespace logmine::obs
