#include "obs/journal.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace logmine::obs {
namespace {

std::atomic<uint64_t> g_next_journal{1};

void AppendEscaped(std::string_view s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

std::string MakeRunId() {
  const auto wall = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::ostringstream os;
  os << "run-" << std::hex << wall << "-" << ::getpid() << "-"
     << g_next_journal.fetch_add(1, std::memory_order_relaxed);
  return std::move(os).str();
}

std::string RotatedName(const std::string& path, size_t generation) {
  return path + "." + std::to_string(generation);
}

// --- minimal JSONL field extraction for the trace converter ----------
// The journal wrote these lines itself, so the grammar is known: keys
// are unescaped, values are integers, doubles, bools, or escaped
// strings. Anything that fails to parse (e.g. a torn final line after a
// crash) is skipped.

bool FindKey(std::string_view line, std::string_view key, size_t* value_at) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  *value_at = at + needle.size();
  return true;
}

bool ExtractInt(std::string_view line, std::string_view key, int64_t* out) {
  size_t at = 0;
  if (!FindKey(line, key, &at)) return false;
  int64_t sign = 1;
  if (at < line.size() && line[at] == '-') {
    sign = -1;
    ++at;
  }
  if (at >= line.size() || line[at] < '0' || line[at] > '9') return false;
  int64_t value = 0;
  while (at < line.size() && line[at] >= '0' && line[at] <= '9') {
    value = value * 10 + (line[at] - '0');
    ++at;
  }
  *out = sign * value;
  return true;
}

bool ExtractString(std::string_view line, std::string_view key,
                   std::string* out) {
  size_t at = 0;
  if (!FindKey(line, key, &at)) return false;
  if (at >= line.size() || line[at] != '"') return false;
  ++at;
  out->clear();
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\' && at + 1 < line.size()) {
      ++at;
      switch (line[at]) {
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        default:
          *out += line[at];
      }
    } else {
      *out += line[at];
    }
    ++at;
  }
  return at < line.size();  // saw the closing quote
}

}  // namespace

JournalField JournalField::Str(std::string_view key, std::string_view value) {
  JournalField field;
  field.key = std::string(key);
  AppendEscaped(value, &field.value);
  return field;
}

JournalField JournalField::Num(std::string_view key, int64_t value) {
  return {std::string(key), std::to_string(value)};
}

JournalField JournalField::Real(std::string_view key, double value) {
  return {std::string(key), std::to_string(value)};
}

JournalField JournalField::Flag(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false"};
}

Journal::Journal(const JournalOptions& options, MetricsRegistry* metrics)
    : options_(options), metrics_(metrics), run_id_(MakeRunId()) {
  if (!options_.path.empty()) {
    file_.open(options_.path, std::ios::out | std::ios::app);
    if (file_.is_open()) {
      file_.seekp(0, std::ios::end);
      const auto pos = file_.tellp();
      bytes_written_ = pos > 0 ? static_cast<size_t>(pos) : 0;
    }
  }
}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) file_.flush();
}

std::string Journal::BeginRootSpan(std::string_view prefix) {
  std::string span(prefix);
  span += '-';
  span += std::to_string(next_span_.fetch_add(1, std::memory_order_relaxed) +
                         1);
  return span;
}

void Journal::Emit(std::string_view span, std::string_view event,
                   const std::vector<JournalField>& fields) {
  std::string line = "{\"ts_ns\":";
  line += std::to_string(MonotonicNowNs());
  line += ",\"run\":";
  AppendEscaped(run_id_, &line);
  line += ",\"span\":";
  AppendEscaped(span, &line);
  line += ",\"event\":";
  AppendEscaped(event, &line);
  for (const JournalField& field : fields) {
    line += ',';
    AppendEscaped(field.key, &line);
    line += ':';
    line += field.value;
  }
  line += '}';

  std::lock_guard<std::mutex> lock(mu_);
  ++events_;
  if (file_.is_open()) {
    file_ << line << '\n';
    file_.flush();  // truthful-after-SIGKILL is the whole point
    bytes_written_ += line.size() + 1;
    if (bytes_written_ >= options_.max_bytes_per_file) RotateLocked();
  }
  tail_.push_back(std::move(line));
  while (tail_.size() > options_.tail_capacity) tail_.pop_front();
  if (metrics_ != nullptr) {
    metrics_->Add(Metric::kJournalEventsEmitted, 1);
  }
}

void Journal::RotateLocked() {
  file_.close();
  if (options_.max_rotated_files == 0) {
    std::remove(options_.path.c_str());
  } else {
    std::remove(RotatedName(options_.path, options_.max_rotated_files).c_str());
    for (size_t g = options_.max_rotated_files; g > 1; --g) {
      std::rename(RotatedName(options_.path, g - 1).c_str(),
                  RotatedName(options_.path, g).c_str());
    }
    std::rename(options_.path.c_str(),
                RotatedName(options_.path, 1).c_str());
  }
  file_.open(options_.path, std::ios::out | std::ios::trunc);
  bytes_written_ = 0;
  ++rotations_;
  if (metrics_ != nullptr) metrics_->Add(Metric::kJournalRotations, 1);
}

std::vector<std::string> Journal::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = std::min(n, tail_.size());
  return std::vector<std::string>(tail_.end() - static_cast<long>(take),
                                  tail_.end());
}

uint64_t Journal::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t Journal::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

std::string JournalToChromeTrace(std::string_view jsonl) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Root spans (the path segment before the first '/') map to trace
  // "threads" so Perfetto lays concurrent shards out as parallel rows.
  std::map<std::string, int> root_tids;
  size_t begin = 0;
  while (begin < jsonl.size()) {
    size_t end = jsonl.find('\n', begin);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(begin, end - begin);
    begin = end + 1;
    int64_t ts_ns = 0;
    std::string span, event;
    if (!ExtractInt(line, "ts_ns", &ts_ns) ||
        !ExtractString(line, "span", &span) ||
        !ExtractString(line, "event", &event)) {
      continue;  // torn or foreign line
    }
    const std::string root = span.substr(0, span.find('/'));
    const auto [it, inserted] =
        root_tids.emplace(root, static_cast<int>(root_tids.size()) + 1);
    const int tid = it->second;
    int64_t dur_ns = 0;
    const bool complete = ExtractInt(line, "dur_ns", &dur_ns);
    if (!first) out += ',';
    first = false;
    std::string name;
    AppendEscaped(span + " " + event, &name);
    out += "{\"name\":" + name + ",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"ts\":" + std::to_string(ts_ns / 1000);
    if (complete) {
      out += ",\"ph\":\"X\",\"dur\":" + std::to_string(dur_ns / 1000) + "}";
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"}";
    }
  }
  out += "]}";
  return out;
}

Status ConvertJournalToChromeTrace(const std::string& journal_path,
                                   const std::string& trace_path) {
  std::ifstream in(journal_path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("journal file not found: " + journal_path);
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string trace = JournalToChromeTrace(content.str());
  std::ofstream out(trace_path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot write trace file: " + trace_path);
  }
  out << trace;
  return out.good() ? Status::OK()
                    : Status::Internal("short write: " + trace_path);
}

}  // namespace logmine::obs
