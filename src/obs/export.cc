#include "obs/export.h"

namespace logmine::obs {
namespace {

bool IsLegalNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void AppendSeries(std::string_view name, std::string_view suffix,
                  std::string_view labels, std::string_view value,
                  std::string* out) {
  out->append(name);
  out->append(suffix);
  out->append(labels);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

std::string MangleMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(IsLegalNameChar(c) ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string ToOpenMetrics(const MetricsSnapshot& snapshot,
                          const OpenMetricsOptions& options) {
  std::string out;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    const std::string name = options.prefix + MangleMetricName(entry.name);
    switch (entry.kind) {
      case MetricKind::kCounter: {
        if (!options.include_zero && entry.value == 0) continue;
        // The sample is <family>_total; a metric already named *_total
        // contributes the suffix itself rather than doubling it.
        std::string family = name;
        constexpr std::string_view kTotal = "_total";
        if (family.size() > kTotal.size() &&
            family.compare(family.size() - kTotal.size(), kTotal.size(),
                           kTotal) == 0) {
          family.resize(family.size() - kTotal.size());
        }
        out += "# TYPE " + family + " counter\n";
        AppendSeries(family, "_total", "", std::to_string(entry.value),
                     &out);
        break;
      }
      case MetricKind::kGauge: {
        if (!options.include_zero && entry.value == 0) continue;
        out += "# TYPE " + name + " gauge\n";
        AppendSeries(name, "", "", std::to_string(entry.value), &out);
        break;
      }
      case MetricKind::kHistogram: {
        if (!options.include_zero && entry.hist.count == 0) continue;
        out += "# TYPE " + name + " histogram\n";
        // Classic Prometheus histogram: cumulative buckets by upper
        // bound, the last one always le="+Inf" with the total count.
        int64_t cumulative = 0;
        for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
          cumulative += entry.hist.buckets[b];
          if (entry.hist.buckets[b] == 0 &&
              b + 1 < HistogramSnapshot::kNumBuckets) {
            continue;  // sparse render; cumulative series stays correct
          }
          const std::string le =
              b + 1 < HistogramSnapshot::kNumBuckets
                  ? std::to_string(HistogramSnapshot::BucketUpperBound(b))
                  : "+Inf";
          AppendSeries(name, "_bucket", "{le=\"" + le + "\"}",
                       std::to_string(cumulative), &out);
        }
        AppendSeries(name, "_sum", "", std::to_string(entry.hist.sum), &out);
        AppendSeries(name, "_count", "", std::to_string(entry.hist.count),
                     &out);
        break;
      }
      case MetricKind::kSketch: {
        if (!options.include_zero && entry.sketch.count() == 0) continue;
        out += "# TYPE " + name + " summary\n";
        for (const double q : {0.5, 0.9, 0.99, 0.999}) {
          std::string quantile = std::to_string(q);
          // Trim trailing zeros ("0.500000" -> "0.5") for stable goldens.
          while (quantile.size() > 3 && quantile.back() == '0') {
            quantile.pop_back();
          }
          AppendSeries(name, "", "{quantile=\"" + quantile + "\"}",
                       std::to_string(entry.sketch.Quantile(q)), &out);
        }
        AppendSeries(name, "_sum", "", std::to_string(entry.sketch.sum()),
                     &out);
        AppendSeries(name, "_count", "",
                     std::to_string(entry.sketch.count()), &out);
        break;
      }
    }
  }
  return out;
}

}  // namespace logmine::obs
