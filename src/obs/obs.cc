#include "obs/obs.h"

#include <atomic>
#include <thread>

namespace logmine::obs {
namespace {

std::atomic<ObsContext*> g_global{nullptr};
// Outstanding AcquireGlobal() pins. The pin/uninstall handshake is a
// store-load pattern (reader: bump pin, then load the pointer; writer:
// store the pointer, then check pins), which is only correct under
// sequential consistency — acq/rel would let the reader's pointer load
// pass its own pin increment.
std::atomic<int> g_pins{0};

}  // namespace

ObsContext* Global() { return g_global.load(std::memory_order_acquire); }

void SetGlobal(ObsContext* context) {
  g_global.store(context, std::memory_order_seq_cst);
  // Wait out every pinned reader of the previous context: the caller
  // (typically ~ScopedGlobalObs) may destroy it right after we return.
  while (g_pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

ObsContext* AcquireGlobal() {
  g_pins.fetch_add(1, std::memory_order_seq_cst);
  ObsContext* context = g_global.load(std::memory_order_seq_cst);
  if (context == nullptr) {
    g_pins.fetch_sub(1, std::memory_order_seq_cst);
  }
  return context;
}

void ReleaseGlobal() { g_pins.fetch_sub(1, std::memory_order_seq_cst); }

}  // namespace logmine::obs
