#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>

#include "util/table_printer.h"

namespace logmine::obs {
namespace {

struct MetricDef {
  std::string_view name;
  MetricKind kind;
};

// Must mirror the Metric enum exactly; VerifyMetricTable() below checks
// the count, and the unit test checks a few names by position.
constexpr MetricDef kMetricDefs[] = {
    {"ingest.lines_total", MetricKind::kCounter},
    {"ingest.records_decoded", MetricKind::kCounter},
    {"ingest.lines_quarantined", MetricKind::kCounter},
    {"ingest.bytes_decoded", MetricKind::kCounter},
    {"ingest.quarantined.bad_escape", MetricKind::kCounter},
    {"ingest.quarantined.field_count", MetricKind::kCounter},
    {"ingest.quarantined.bad_timestamp", MetricKind::kCounter},
    {"ingest.quarantined.bad_severity", MetricKind::kCounter},
    {"ingest.quarantined.empty_source", MetricKind::kCounter},
    {"ingest.quarantined.truncated_line", MetricKind::kCounter},
    {"ingest.decode_ns", MetricKind::kHistogram},
    {"ingest.parallel_decodes", MetricKind::kCounter},
    {"ingest.chunks_decoded", MetricKind::kCounter},
    {"ingest.columnar_reads", MetricKind::kCounter},
    {"ingest.columnar_writes", MetricKind::kCounter},
    {"ingest.columnar_bytes_read", MetricKind::kCounter},
    {"ingest.columnar_read_ns", MetricKind::kHistogram},
    {"ingest.columnar_write_ns", MetricKind::kHistogram},
    {"store.index_builds", MetricKind::kCounter},
    {"store.records_indexed", MetricKind::kCounter},
    {"store.index_build_ns", MetricKind::kHistogram},
    {"store.range_queries", MetricKind::kCounter},
    {"l1.runs", MetricKind::kCounter},
    {"l1.slots_total", MetricKind::kCounter},
    {"l1.slot_tests", MetricKind::kCounter},
    {"l1.pairs_tested", MetricKind::kCounter},
    {"l1.pairs_pruned", MetricKind::kCounter},
    {"l1.mine_ns", MetricKind::kHistogram},
    {"l2.runs", MetricKind::kCounter},
    {"l2.sessions_built", MetricKind::kCounter},
    {"l2.session_logs_assigned", MetricKind::kCounter},
    {"l2.bigrams_counted", MetricKind::kCounter},
    {"l2.pairs_scored", MetricKind::kCounter},
    {"l2.session_build_ns", MetricKind::kHistogram},
    {"l2.mine_ns", MetricKind::kHistogram},
    {"l3.runs", MetricKind::kCounter},
    {"l3.logs_scanned", MetricKind::kCounter},
    {"l3.logs_stopped", MetricKind::kCounter},
    {"l3.citations_counted", MetricKind::kCounter},
    {"l3.mine_ns", MetricKind::kHistogram},
    {"agrawal.runs", MetricKind::kCounter},
    {"agrawal.mine_ns", MetricKind::kHistogram},
    {"executor.tasks_submitted", MetricKind::kCounter},
    {"executor.tasks_completed", MetricKind::kCounter},
    {"executor.parallel_loops", MetricKind::kCounter},
    {"executor.indices_skipped", MetricKind::kCounter},
    {"executor.queue_depth", MetricKind::kGauge},
    {"executor.saturation", MetricKind::kCounter},
    {"executor.task_ns", MetricKind::kHistogram},
    {"executor.queue_wait_ns", MetricKind::kSketch},
    {"pipeline.runs", MetricKind::kCounter},
    {"pipeline.miners_ok", MetricKind::kCounter},
    {"pipeline.miners_failed", MetricKind::kCounter},
    {"pipeline.run_ns", MetricKind::kHistogram},
    {"eval.days_mined", MetricKind::kCounter},
    {"eval.day_ns", MetricKind::kHistogram},
    {"checkpoint.snapshots_written", MetricKind::kCounter},
    {"checkpoint.bytes_written", MetricKind::kCounter},
    {"checkpoint.write_ns", MetricKind::kHistogram},
    {"checkpoint.snapshots_read", MetricKind::kCounter},
    {"checkpoint.bytes_read", MetricKind::kCounter},
    {"checkpoint.read_ns", MetricKind::kHistogram},
    {"checkpoint.generations_discarded", MetricKind::kCounter},
    {"retry.attempts", MetricKind::kCounter},
    {"retry.backoff_ms_total", MetricKind::kCounter},
    {"shard.attempts", MetricKind::kCounter},
    {"shard.failures", MetricKind::kCounter},
    {"shard.retries", MetricKind::kCounter},
    {"shard.hedges_launched", MetricKind::kCounter},
    {"shard.hedges_won", MetricKind::kCounter},
    {"shard.breaker_trips", MetricKind::kCounter},
    {"shard.completed", MetricKind::kCounter},
    {"shard.poisoned", MetricKind::kCounter},
    {"shard.attempt_ns", MetricKind::kSketch},
    {"sweep.coverage_permille", MetricKind::kGauge},
    {"serve.batches_submitted", MetricKind::kCounter},
    {"serve.batches_shed", MetricKind::kCounter},
    {"serve.batches_poisoned", MetricKind::kCounter},
    {"serve.epochs_ingested", MetricKind::kCounter},
    {"serve.epochs_aged_out", MetricKind::kCounter},
    {"serve.queue_depth", MetricKind::kGauge},
    {"serve.generations_published", MetricKind::kCounter},
    {"serve.queries", MetricKind::kCounter},
    {"serve.query_deadline_exceeded", MetricKind::kCounter},
    {"serve.state_snapshots_written", MetricKind::kCounter},
    {"serve.recoveries", MetricKind::kCounter},
    {"serve.clock_regressions", MetricKind::kCounter},
    {"serve.health_transitions", MetricKind::kCounter},
    {"serve.ingest_ns", MetricKind::kHistogram},
    {"serve.publish_ns", MetricKind::kSketch},
    {"serve.query_ns", MetricKind::kSketch},
    {"journal.events_emitted", MetricKind::kCounter},
    {"journal.rotations", MetricKind::kCounter},
    {"postmortem.bundles_written", MetricKind::kCounter},
};

static_assert(std::size(kMetricDefs) == kNumWellKnownMetrics,
              "kMetricDefs must mirror the Metric enum");

constexpr uint32_t kKindShift = 24;
constexpr uint32_t kSlotMask = (1u << kKindShift) - 1;

constexpr MetricKind KindOfId(MetricsRegistry::MetricId id) {
  return static_cast<MetricKind>(id >> kKindShift);
}

constexpr MetricsRegistry::MetricId EncodeId(MetricKind kind, size_t slot) {
  return (static_cast<uint32_t>(kind) << kKindShift) |
         static_cast<uint32_t>(slot);
}

// Precomputed enum -> encoded id table: scalar, histogram and sketch
// slots each count up in enum order.
constexpr auto kWellKnownIds = [] {
  std::array<MetricsRegistry::MetricId, kNumWellKnownMetrics> ids{};
  size_t scalars = 0;
  size_t histograms = 0;
  size_t sketches = 0;
  for (size_t i = 0; i < kNumWellKnownMetrics; ++i) {
    const MetricKind kind = kMetricDefs[i].kind;
    size_t slot = 0;
    switch (kind) {
      case MetricKind::kHistogram:
        slot = histograms++;
        break;
      case MetricKind::kSketch:
        slot = sketches++;
        break;
      default:
        slot = scalars++;
    }
    ids[i] = EncodeId(kind, slot);
  }
  return ids;
}();

constexpr size_t CountOfKind(MetricKind kind) {
  size_t n = 0;
  for (const MetricDef& def : kMetricDefs) {
    if (def.kind == kind) ++n;
  }
  return n;
}

constexpr size_t kWellKnownHistograms = CountOfKind(MetricKind::kHistogram);
constexpr size_t kWellKnownSketches = CountOfKind(MetricKind::kSketch);
constexpr size_t kWellKnownScalars =
    kNumWellKnownMetrics - kWellKnownHistograms - kWellKnownSketches;

// The default capacities must fit every built-in metric with headroom.
static_assert(kWellKnownScalars <= MetricsOptions{}.max_scalars);
static_assert(kWellKnownHistograms <= MetricsOptions{}.max_histograms);
static_assert(kWellKnownSketches <= MetricsOptions{}.max_sketches);

std::atomic<uint64_t> g_next_registry_id{1};

std::string FormatNs(int64_t ns) {
  std::ostringstream os;
  if (ns >= 1'000'000'000) {
    os << static_cast<double>(ns) / 1e9 << "s";
  } else if (ns >= 1'000'000) {
    os << static_cast<double>(ns) / 1e6 << "ms";
  } else if (ns >= 1'000) {
    os << static_cast<double>(ns) / 1e3 << "us";
  } else {
    os << ns << "ns";
  }
  return std::move(os).str();
}

void AppendJsonString(std::string_view s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kSketch:
      return "sketch";
  }
  return "unknown";
}

std::string_view MetricName(Metric metric) {
  return kMetricDefs[static_cast<size_t>(metric)].name;
}

MetricKind MetricKindOf(Metric metric) {
  return kMetricDefs[static_cast<size_t>(metric)].kind;
}

MetricsRegistry::MetricId WellKnownId(Metric metric) {
  return kWellKnownIds[static_cast<size_t>(metric)];
}

size_t HistogramSnapshot::BucketOf(int64_t value) {
  if (value <= 1) return 0;
  const auto width =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value - 1)));
  return std::min(width, kNumBuckets - 1);
}

int64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return INT64_MAX;
  return int64_t{1} << i;
}

int64_t HistogramSnapshot::QuantileUpperBound(double q) const {
  if (count == 0) return 0;
  // Nearest-rank: the first bucket whose cumulative count covers
  // ceil(q * count) observations (clamped to [1, count]). Clamping the
  // bucket bound to the recorded max keeps single-observation (and
  // top-bucket) estimates at the observed value instead of the bucket's
  // nominal bound — the top bucket would otherwise export INT64_MAX.
  const auto rank = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count))), 1,
      count);
  int64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max);
  }
  return std::min(BucketUpperBound(kNumBuckets - 1), max);
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    std::string_view name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

int64_t MetricsSnapshot::Value(std::string_view name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) return 0;
  switch (entry->kind) {
    case MetricKind::kHistogram:
      return entry->hist.count;
    case MetricKind::kSketch:
      return entry->sketch.count();
    default:
      return entry->value;
  }
}

std::string MetricsSnapshot::ToText(bool include_zero) const {
  TablePrinter table({"metric", "kind", "value", "mean", "p99"});
  for (const Entry& entry : entries) {
    if (entry.kind == MetricKind::kHistogram) {
      if (!include_zero && entry.hist.count == 0) continue;
      table.AddRow({entry.name, std::string(MetricKindName(entry.kind)),
                    std::to_string(entry.hist.count),
                    FormatNs(static_cast<int64_t>(entry.hist.mean())),
                    FormatNs(entry.hist.QuantileUpperBound(0.99))});
    } else if (entry.kind == MetricKind::kSketch) {
      if (!include_zero && entry.sketch.count() == 0) continue;
      table.AddRow({entry.name, std::string(MetricKindName(entry.kind)),
                    std::to_string(entry.sketch.count()),
                    FormatNs(static_cast<int64_t>(entry.sketch.mean())),
                    FormatNs(entry.sketch.Quantile(0.99))});
    } else {
      if (!include_zero && entry.value == 0) continue;
      table.AddRow({entry.name, std::string(MetricKindName(entry.kind)),
                    std::to_string(entry.value), "", ""});
    }
  }
  return table.ToString();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(entry.name, &out);
    out += ": ";
    if (entry.kind == MetricKind::kHistogram) {
      out += "{\"count\": " + std::to_string(entry.hist.count) +
             ", \"sum\": " + std::to_string(entry.hist.sum) +
             ", \"mean\": " + std::to_string(entry.hist.mean()) +
             ", \"max\": " + std::to_string(entry.hist.max) +
             ", \"p50\": " +
             std::to_string(entry.hist.QuantileUpperBound(0.5)) +
             ", \"p99\": " +
             std::to_string(entry.hist.QuantileUpperBound(0.99)) +
             ", \"buckets\": [";
      for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(entry.hist.buckets[i]);
      }
      out += "]}";
    } else if (entry.kind == MetricKind::kSketch) {
      const LatencySketch& sketch = entry.sketch;
      out += "{\"count\": " + std::to_string(sketch.count()) +
             ", \"sum\": " + std::to_string(sketch.sum()) +
             ", \"mean\": " + std::to_string(sketch.mean()) +
             ", \"min\": " + std::to_string(sketch.min()) +
             ", \"max\": " + std::to_string(sketch.max()) +
             ", \"p50\": " + std::to_string(sketch.Quantile(0.5)) +
             ", \"p90\": " + std::to_string(sketch.Quantile(0.9)) +
             ", \"p99\": " + std::to_string(sketch.Quantile(0.99)) +
             ", \"p999\": " + std::to_string(sketch.Quantile(0.999)) +
             ", \"alpha\": " + std::to_string(sketch.alpha()) + "}";
    } else {
      out += std::to_string(entry.value);
    }
  }
  out += "}";
  return out;
}

// One thread's private slice of every metric. Relaxed atomics: the
// owning thread is the only writer, snapshots only need eventual sums
// (exact once writers quiesce), and int64 addition commutes. Sketch
// slots carry a short mutex instead — their updates are structural
// (sparse-table inserts) — which the owning thread holds for nanoseconds
// and a snapshot holds per-slot while merging.
struct MetricsRegistry::Shard {
  struct Hist {
    std::array<std::atomic<int64_t>, HistogramSnapshot::kNumBuckets>
        buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    // Running maximum. The owning thread is the only writer, so a
    // load-compare-store (no CAS) is race-free; snapshots read relaxed.
    std::atomic<int64_t> max{INT64_MIN};
  };
  struct SketchSlot {
    std::mutex mu;
    LatencySketch sketch;
  };

  explicit Shard(const MetricsOptions& options)
      : scalars(new std::atomic<int64_t>[options.max_scalars]),
        histograms(new Hist[options.max_histograms]),
        sketches(new SketchSlot[options.max_sketches]) {
    for (size_t i = 0; i < options.max_scalars; ++i) {
      scalars[i].store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < options.max_sketches; ++i) {
      sketches[i].sketch = LatencySketch(options.sketch_alpha);
    }
  }

  std::unique_ptr<std::atomic<int64_t>[]> scalars;
  std::unique_ptr<Hist[]> histograms;
  std::unique_ptr<SketchSlot[]> sketches;
};

MetricsRegistry::MetricsRegistry(const MetricsOptions& options)
    : registry_id_(g_next_registry_id.fetch_add(1,
                                                std::memory_order_relaxed)),
      options_(options) {
  assert(options_.max_scalars >= kWellKnownScalars);
  assert(options_.max_histograms >= kWellKnownHistograms);
  assert(options_.max_sketches >= kWellKnownSketches);
  scalar_names_.reserve(options_.max_scalars);
  scalar_kinds_.reserve(options_.max_scalars);
  histogram_names_.reserve(options_.max_histograms);
  sketch_names_.reserve(options_.max_sketches);
  for (const MetricDef& def : kMetricDefs) {
    switch (def.kind) {
      case MetricKind::kHistogram:
        histogram_names_.emplace_back(def.name);
        break;
      case MetricKind::kSketch:
        sketch_names_.emplace_back(def.name);
        break;
      default:
        scalar_names_.emplace_back(def.name);
        scalar_kinds_.push_back(def.kind);
    }
  }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::LocalShard() const {
  // Per-thread (registry -> shard) cache, keyed by the process-unique
  // registry id so a destroyed registry's entry can never alias a new
  // one at the same address.
  struct TlsEntry {
    uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<TlsEntry> tls;
  for (const TlsEntry& entry : tls) {
    if (entry.registry_id == registry_id_) return entry.shard;
  }
  auto owned = std::make_unique<Shard>(options_);
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  tls.push_back({registry_id_, shard});
  return shard;
}

Result<MetricsRegistry::MetricId> MetricsRegistry::RegisterNamed(
    std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  // Each name lives in exactly one of the three slot families; a hit in
  // the right family with the right kind returns the existing id, a hit
  // anywhere else is a kind conflict.
  const auto find_in = [&name](const std::vector<std::string>& names) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int64_t>(i);
    }
    return int64_t{-1};
  };
  const int64_t in_scalars = find_in(scalar_names_);
  const int64_t in_histograms = find_in(histogram_names_);
  const int64_t in_sketches = find_in(sketch_names_);
  const auto conflict = [&name]() {
    return Status::AlreadyExists("metric '" + std::string(name) +
                                 "' exists with a different kind");
  };
  const auto exhausted = [&name](std::string_view family, size_t cap) {
    return Status::ResourceExhausted(
        "metric capacity exhausted registering '" + std::string(name) +
        "': " + std::string(family) + " cap " + std::to_string(cap) +
        " is full (raise MetricsOptions)");
  };
  switch (kind) {
    case MetricKind::kHistogram: {
      if (in_histograms >= 0) {
        return EncodeId(kind, static_cast<size_t>(in_histograms));
      }
      if (in_scalars >= 0 || in_sketches >= 0) return conflict();
      if (histogram_names_.size() >= options_.max_histograms) {
        return exhausted("histogram", options_.max_histograms);
      }
      histogram_names_.emplace_back(name);
      return EncodeId(kind, histogram_names_.size() - 1);
    }
    case MetricKind::kSketch: {
      if (in_sketches >= 0) {
        return EncodeId(kind, static_cast<size_t>(in_sketches));
      }
      if (in_scalars >= 0 || in_histograms >= 0) return conflict();
      if (sketch_names_.size() >= options_.max_sketches) {
        return exhausted("sketch", options_.max_sketches);
      }
      sketch_names_.emplace_back(name);
      return EncodeId(kind, sketch_names_.size() - 1);
    }
    default: {
      if (in_scalars >= 0) {
        return scalar_kinds_[static_cast<size_t>(in_scalars)] == kind
                   ? Result<MetricId>(
                         EncodeId(kind, static_cast<size_t>(in_scalars)))
                   : Result<MetricId>(conflict());
      }
      if (in_histograms >= 0 || in_sketches >= 0) return conflict();
      if (scalar_names_.size() >= options_.max_scalars) {
        return exhausted("scalar", options_.max_scalars);
      }
      scalar_names_.emplace_back(name);
      scalar_kinds_.push_back(kind);
      return EncodeId(kind, scalar_names_.size() - 1);
    }
  }
}

Result<MetricsRegistry::MetricId> MetricsRegistry::TryRegisterCounter(
    std::string_view name) {
  return RegisterNamed(name, MetricKind::kCounter);
}

Result<MetricsRegistry::MetricId> MetricsRegistry::TryRegisterGauge(
    std::string_view name) {
  return RegisterNamed(name, MetricKind::kGauge);
}

Result<MetricsRegistry::MetricId> MetricsRegistry::TryRegisterHistogram(
    std::string_view name) {
  return RegisterNamed(name, MetricKind::kHistogram);
}

Result<MetricsRegistry::MetricId> MetricsRegistry::TryRegisterSketch(
    std::string_view name) {
  return RegisterNamed(name, MetricKind::kSketch);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterCounter(
    std::string_view name) {
  return TryRegisterCounter(name).value_or(kInvalidMetricId);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterGauge(
    std::string_view name) {
  return TryRegisterGauge(name).value_or(kInvalidMetricId);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterHistogram(
    std::string_view name) {
  return TryRegisterHistogram(name).value_or(kInvalidMetricId);
}

MetricsRegistry::MetricId MetricsRegistry::RegisterSketch(
    std::string_view name) {
  return TryRegisterSketch(name).value_or(kInvalidMetricId);
}

void MetricsRegistry::Add(MetricId id, int64_t delta) {
  if (id == kInvalidMetricId) return;
  const size_t slot = id & kSlotMask;
  const MetricKind kind = KindOfId(id);
  // A histogram/sketch id (or a corrupted slot) must not index the
  // scalar array; dropping the write is the lock-free path's only safe
  // option.
  assert(kind == MetricKind::kCounter || kind == MetricKind::kGauge);
  if (slot >= options_.max_scalars ||
      (kind != MetricKind::kCounter && kind != MetricKind::kGauge)) {
    return;
  }
  LocalShard()->scalars[slot].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Add(Metric metric, int64_t delta) {
  Add(WellKnownId(metric), delta);
}

void MetricsRegistry::Observe(MetricId id, int64_t value) {
  if (id == kInvalidMetricId) return;
  const size_t slot = id & kSlotMask;
  const MetricKind kind = KindOfId(id);
  // Observing a counter/gauge id would index the (smaller) distribution
  // arrays with a scalar slot — drop it instead of corrupting the shard.
  assert(kind == MetricKind::kHistogram || kind == MetricKind::kSketch);
  if (kind == MetricKind::kSketch) {
    if (slot >= options_.max_sketches) return;
    Shard::SketchSlot& sketch_slot = LocalShard()->sketches[slot];
    std::lock_guard<std::mutex> lock(sketch_slot.mu);
    sketch_slot.sketch.Observe(value);
    return;
  }
  if (kind != MetricKind::kHistogram || slot >= options_.max_histograms) {
    return;
  }
  Shard::Hist& hist = LocalShard()->histograms[slot];
  hist.buckets[HistogramSnapshot::BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
  if (value > hist.max.load(std::memory_order_relaxed)) {
    hist.max.store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::Observe(Metric metric, int64_t value) {
  Observe(WellKnownId(metric), value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(scalar_names_.size() + histogram_names_.size() +
                           sketch_names_.size());
  std::vector<int64_t> scalars(scalar_names_.size(), 0);
  std::vector<HistogramSnapshot> histograms(histogram_names_.size());
  std::vector<LatencySketch> sketches(
      sketch_names_.size(), LatencySketch(options_.sketch_alpha));
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (size_t i = 0; i < scalars.size(); ++i) {
      scalars[i] += shard->scalars[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < histograms.size(); ++i) {
      const Shard::Hist& hist = shard->histograms[i];
      const int64_t shard_count = hist.count.load(std::memory_order_relaxed);
      if (shard_count > 0) {
        const int64_t shard_max = hist.max.load(std::memory_order_relaxed);
        if (histograms[i].count == 0 || shard_max > histograms[i].max) {
          histograms[i].max = shard_max;
        }
      }
      histograms[i].count += shard_count;
      histograms[i].sum += hist.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
        histograms[i].buckets[b] +=
            hist.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (size_t i = 0; i < sketches.size(); ++i) {
      Shard::SketchSlot& slot = shard->sketches[i];
      std::lock_guard<std::mutex> slot_lock(slot.mu);
      sketches[i].Merge(slot.sketch);
    }
  }
  for (size_t i = 0; i < scalars.size(); ++i) {
    MetricsSnapshot::Entry entry;
    entry.name = scalar_names_[i];
    entry.kind = scalar_kinds_[i];
    entry.value = scalars[i];
    snapshot.entries.push_back(std::move(entry));
  }
  for (size_t i = 0; i < histograms.size(); ++i) {
    MetricsSnapshot::Entry entry;
    entry.name = histogram_names_[i];
    entry.kind = MetricKind::kHistogram;
    entry.hist = histograms[i];
    snapshot.entries.push_back(std::move(entry));
  }
  for (size_t i = 0; i < sketches.size(); ++i) {
    MetricsSnapshot::Entry entry;
    entry.name = sketch_names_[i];
    entry.kind = MetricKind::kSketch;
    entry.sketch = std::move(sketches[i]);
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

}  // namespace logmine::obs
