#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>

namespace logmine::obs {
namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += *s;
    }
  }
}

void AppendMicros(int64_t ns, std::string* out) {
  // Fixed-point microseconds with 3 decimals, avoiding float rounding.
  *out += std::to_string(ns / 1000);
  *out += '.';
  const auto frac = static_cast<int>(ns % 1000);
  *out += static_cast<char>('0' + frac / 100);
  *out += static_cast<char>('0' + (frac / 10) % 10);
  *out += static_cast<char>('0' + frac % 10);
}

}  // namespace

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

uint32_t CurrentTraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;  // overwrite the oldest
  }
  ++total_;
}

uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  const size_t oldest = total_ > capacity_ ? total_ % capacity_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return events;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": \"";
    AppendEscaped(event.name, &out);
    out += "\", \"cat\": \"logmine\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(event.tid);
    out += ", \"ts\": ";
    AppendMicros(event.start_ns, &out);
    out += ", \"dur\": ";
    AppendMicros(event.dur_ns, &out);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const std::string json = ToChromeTraceJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace logmine::obs
