#ifndef LOGMINE_OBS_METRICS_H_
#define LOGMINE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency_sketch.h"
#include "util/result.h"

namespace logmine::obs {

/// What a metric measures. Counters are monotonic sums, gauges are
/// up/down sums (e.g. a queue depth maintained by +1/-1 deltas),
/// histograms are fixed log2-bucket latency distributions, and sketches
/// are mergeable bounded-relative-error quantile sketches
/// (obs/latency_sketch.h) — the tail-accurate replacement the serve
/// and sweep latency metrics use.
enum class MetricKind : uint32_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
  kSketch = 3,
};

std::string_view MetricKindName(MetricKind kind);

/// Every built-in instrumentation point in the library, one per line of
/// the naming scheme `<layer>.<what>[_ns]` (DESIGN.md §10). The enum is
/// the fast path: `Add(Metric::k...)` compiles to an array index with
/// no name lookup. Dynamic metrics registered at runtime live in the
/// same registry after these.
enum class Metric : uint32_t {
  // --- ingest / decode (log/codec.cc) ---
  kIngestLinesTotal = 0,
  kIngestRecordsDecoded,
  kIngestLinesQuarantined,
  kIngestBytesDecoded,
  // Per-class quarantine tallies; order mirrors IngestErrorClass.
  kIngestQuarantinedBadEscape,
  kIngestQuarantinedFieldCount,
  kIngestQuarantinedBadTimestamp,
  kIngestQuarantinedBadSeverity,
  kIngestQuarantinedEmptySource,
  kIngestQuarantinedTruncatedLine,
  kIngestDecodeNs,
  // Parallel chunked decode (log/codec.cc) and the binary columnar
  // corpus format (log/columnar.cc).
  kIngestParallelDecodes,
  kIngestChunksDecoded,
  kIngestColumnarReads,
  kIngestColumnarWrites,
  kIngestColumnarBytesRead,
  kIngestColumnarReadNs,
  kIngestColumnarWriteNs,
  // --- log store (log/store.cc) ---
  kStoreIndexBuilds,
  kStoreRecordsIndexed,
  kStoreIndexBuildNs,
  kStoreRangeQueries,
  // --- miners (core/) ---
  kL1Runs,
  kL1SlotsTotal,
  kL1SlotTests,
  kL1PairsTested,
  kL1PairsPruned,
  kL1MineNs,
  kL2Runs,
  kL2SessionsBuilt,
  kL2SessionLogsAssigned,
  kL2BigramsCounted,
  kL2PairsScored,
  kL2SessionBuildNs,
  kL2MineNs,
  kL3Runs,
  kL3LogsScanned,
  kL3LogsStopped,
  kL3CitationsCounted,
  kL3MineNs,
  kAgrawalRuns,
  kAgrawalMineNs,
  // --- executor (util/executor.cc) ---
  kExecutorTasksSubmitted,
  kExecutorTasksCompleted,
  kExecutorParallelLoops,
  kExecutorIndicesSkipped,
  kExecutorQueueDepth,
  kExecutorSaturation,
  kExecutorTaskNs,
  /// Enqueue -> dequeue wait of each executor task, as a sketch: the
  /// time-unit face of saturation (the counter says *that* tasks
  /// waited; this says *how long*), measurable even on a 1-core box.
  kExecutorQueueWaitNs,
  // --- pipeline (core/pipeline.cc) ---
  kPipelineRuns,
  kPipelineMinersOk,
  kPipelineMinersFailed,
  kPipelineRunNs,
  // --- daily / resumable runners (eval/) ---
  kEvalDaysMined,
  kEvalDayNs,
  // --- checkpoint I/O (util/snapshot.cc, eval/resumable_runner.cc) ---
  kCheckpointSnapshotsWritten,
  kCheckpointBytesWritten,
  kCheckpointWriteNs,
  kCheckpointSnapshotsRead,
  kCheckpointBytesRead,
  kCheckpointReadNs,
  kCheckpointGenerationsDiscarded,
  // --- retry (util/retry.cc) ---
  kRetryAttempts,
  kRetryBackoffMsTotal,
  // --- sharded sweep supervisor (eval/shard_supervisor.cc) ---
  kShardAttempts,
  kShardFailures,
  kShardRetries,
  kShardHedgesLaunched,
  kShardHedgesWon,
  kShardBreakerTrips,
  kShardsCompleted,
  kShardsPoisoned,
  kShardAttemptNs,
  kSweepCoveragePermille,
  // --- streaming mining service (src/serve/) ---
  kServeBatchesSubmitted,
  kServeBatchesShed,
  kServeBatchesPoisoned,
  kServeEpochsIngested,
  kServeEpochsAgedOut,
  kServeQueueDepth,
  kServeGenerationsPublished,
  kServeQueries,
  kServeQueryDeadlineExceeded,
  kServeStateSnapshotsWritten,
  kServeRecoveries,
  kServeClockRegressions,
  kServeHealthTransitions,
  kServeIngestNs,
  kServePublishNs,
  kServeQueryNs,
  // --- postmortem / journal (src/obs/) ---
  kJournalEventsEmitted,
  kJournalRotations,
  kPostmortemBundlesWritten,

  kNumMetrics,
};

inline constexpr size_t kNumWellKnownMetrics =
    static_cast<size_t>(Metric::kNumMetrics);

/// Stable export name (e.g. "l2.bigrams_counted") and kind of a
/// well-known metric.
std::string_view MetricName(Metric metric);
MetricKind MetricKindOf(Metric metric);

/// One histogram's merged state: log2 buckets (bucket 0 holds values
/// <= 1, bucket i holds [2^(i-1), 2^i), the last bucket everything
/// larger), plus exact count and sum, so averages are not bucketed.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 32;

  int64_t count = 0;
  int64_t sum = 0;
  /// Largest value observed; meaningful only when count > 0. Quantile
  /// estimates clamp to it, so a lone observation landing in a wide
  /// bucket (or the open-ended top bucket) reports its own value rather
  /// than the bucket's nominal bound (INT64_MAX for the top bucket).
  int64_t max = 0;
  std::array<int64_t, kNumBuckets> buckets{};

  /// Bucket a value falls into (shared with the live registry).
  static size_t BucketOf(int64_t value);
  /// Inclusive upper bound of bucket `i` (INT64_MAX for the last).
  static int64_t BucketUpperBound(size_t i);

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket holding quantile `q` in [0, 1], clamped
  /// to the recorded maximum — an upper estimate good to one power of
  /// two that never exceeds any actually-observed value. 0 when empty.
  int64_t QuantileUpperBound(double q) const;
};

/// Point-in-time merged view of a registry, in registration order
/// (well-known metrics first), so exports are deterministic for any
/// thread count.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    int64_t value = 0;         ///< counters and gauges
    HistogramSnapshot hist;    ///< histograms only
    LatencySketch sketch;      ///< sketches only
  };

  std::vector<Entry> entries;

  /// Entry by export name; nullptr when absent.
  const Entry* Find(std::string_view name) const;
  /// Scalar value by name; 0 when absent (histograms and sketches: the
  /// count).
  int64_t Value(std::string_view name) const;

  /// Aligned table (util/table_printer) of every non-zero metric:
  /// metric | kind | value | mean_ns | p99_ns.
  std::string ToText(bool include_zero = false) const;
  /// One JSON object: scalars as numbers, histograms as
  /// {"count","sum","mean","p50","p99","buckets":[...]}, sketches as
  /// {"count","sum","mean","min","max","p50","p90","p99","p999",
  ///  "alpha"}.
  std::string ToJson() const;
};

/// Capacity knobs of one registry. Registration past a cap fails with
/// kResourceExhausted (TryRegister*) instead of silently dropping the
/// metric; the defaults leave plenty of headroom over the well-known
/// set. Capacities are fixed at construction — the per-thread shards
/// never grow mid-flight, which is what keeps the write path free of
/// locks and resize races.
struct MetricsOptions {
  size_t max_scalars = 160;
  size_t max_histograms = 48;
  size_t max_sketches = 16;
  /// Relative accuracy of every sketch metric (see LatencySketch).
  double sketch_alpha = LatencySketch::kDefaultAlpha;
};

/// Thread-safe metrics registry with a lock-free fast path: every
/// thread writes to its own shard of relaxed atomics (the FlatCounter
/// discipline — contention-free accumulation, merge on read), and
/// `Snapshot` sums the shards. Sketch metrics take a per-shard,
/// per-slot mutex instead (their updates are structural); the owning
/// thread is the only writer, so the lock is uncontended except
/// against snapshots. Well-known `Metric`s are pre-registered;
/// `TryRegister*` adds dynamically named metrics until the configured
/// capacity is exhausted (kResourceExhausted).
///
/// Determinism: addition over int64 commutes (and sketch merge is
/// associative and order-independent), so a snapshot taken after the
/// instrumented work quiesces is byte-identical for any thread count
/// or schedule.
class MetricsRegistry {
 public:
  /// Encoded metric handle: kind in the top byte, shard slot below.
  using MetricId = uint32_t;
  static constexpr MetricId kInvalidMetricId = 0xffffffffu;

  explicit MetricsRegistry(const MetricsOptions& options = {});
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  const MetricsOptions& options() const { return options_; }

  /// Registers (or finds, by name) a dynamic metric. Thread-safe.
  /// Fails with kResourceExhausted when the configured capacity is
  /// full, kAlreadyExists when the name exists with a different kind.
  Result<MetricId> TryRegisterCounter(std::string_view name);
  Result<MetricId> TryRegisterGauge(std::string_view name);
  Result<MetricId> TryRegisterHistogram(std::string_view name);
  Result<MetricId> TryRegisterSketch(std::string_view name);

  /// Lenient forms: kInvalidMetricId on any failure (writes to an
  /// invalid id are dropped) — for callers that prefer losing a metric
  /// over failing a run.
  MetricId RegisterCounter(std::string_view name);
  MetricId RegisterGauge(std::string_view name);
  MetricId RegisterHistogram(std::string_view name);
  MetricId RegisterSketch(std::string_view name);

  /// Adds `delta` to a counter or gauge. Lock-free; invalid ids are
  /// dropped silently.
  void Add(MetricId id, int64_t delta);
  void Add(Metric metric, int64_t delta = 1);

  /// Records one observation (latencies: nanoseconds) into a histogram
  /// or sketch id — the kind encoded in the id picks the store, so
  /// TraceSpan instrumentation is agnostic to which one a metric uses.
  void Observe(MetricId id, int64_t value);
  void Observe(Metric metric, int64_t value);

  /// Merged view of all shards. Safe to call concurrently with
  /// writers; exact once writers have quiesced.
  MetricsSnapshot Snapshot() const;

 private:
  struct Shard;

  Shard* LocalShard() const;
  Result<MetricId> RegisterNamed(std::string_view name, MetricKind kind);

  const uint64_t registry_id_;  ///< process-unique, for thread-local lookup
  const MetricsOptions options_;

  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  /// Slot -> name/kind tables, pre-filled with the well-known metrics.
  std::vector<std::string> scalar_names_;
  std::vector<MetricKind> scalar_kinds_;
  std::vector<std::string> histogram_names_;
  std::vector<std::string> sketch_names_;
};

/// The encoded id of a well-known metric (constant-time, no lookup).
MetricsRegistry::MetricId WellKnownId(Metric metric);

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_METRICS_H_
