#ifndef LOGMINE_OBS_OBS_H_
#define LOGMINE_OBS_OBS_H_

#include <cstdint>
#include <optional>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/resource_probe.h"
#include "obs/trace.h"

namespace logmine::obs {

/// Knobs of one observability context.
struct ObsOptions {
  size_t trace_capacity = TraceRecorder::kDefaultCapacity;
  /// Registry capacities and sketch accuracy.
  MetricsOptions metrics;
  /// Event journal; the default (no path) keeps it memory-only, which
  /// still feeds the introspection tail and postmortem bundles.
  JournalOptions journal;
};

/// One metrics registry, one trace flight recorder, and one structured
/// event journal — the unit a pipeline run (or a whole process) records
/// into. Thread-safe; cheap to pass by pointer, with nullptr meaning
/// "observability off".
class ObsContext {
 public:
  explicit ObsContext(const ObsOptions& options = {})
      : metrics_(options.metrics),
        trace_(options.trace_capacity),
        journal_(options.journal, &metrics_) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  ResourceProbe& probe() { return probe_; }
  const ResourceProbe& probe() const { return probe_; }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  Journal journal_;
  ResourceProbe probe_;
};

/// The ambient process-wide context low-level layers (codec, store,
/// executor, snapshot I/O) record into; nullptr (the default) disables
/// them at the cost of one relaxed atomic load per instrumentation
/// point. Set it before concurrent work starts and clear it only after
/// that work quiesces — layers cache nothing, but a context swapped
/// mid-run splits its counts across the old and new registries.
ObsContext* Global();
void SetGlobal(ObsContext* context);

/// Pins the installed global context (may return null). Unlike a bare
/// `Global()` load, the returned pointer stays valid until the matching
/// `ReleaseGlobal()`: `SetGlobal` blocks until every pin is released
/// before letting the installer proceed (and, typically, destroy the
/// context). Required wherever a write can outlast the synchronization
/// point the context owner waits on — e.g. an executor worker timing a
/// task whose completion was already signalled inside the task. A null
/// return is already unpinned; call `ReleaseGlobal()` only for non-null.
ObsContext* AcquireGlobal();
void ReleaseGlobal();

/// RAII installer: sets the global context, restores the previous one
/// on destruction.
class ScopedGlobalObs {
 public:
  explicit ScopedGlobalObs(ObsContext* context) : previous_(Global()) {
    SetGlobal(context);
  }
  ~ScopedGlobalObs() { SetGlobal(previous_); }
  ScopedGlobalObs(const ScopedGlobalObs&) = delete;
  ScopedGlobalObs& operator=(const ScopedGlobalObs&) = delete;

 private:
  ObsContext* previous_;
};

/// The context a layer should record into when handed an explicit one:
/// the explicit context if non-null, else the global one (may be null).
inline ObsContext* Effective(ObsContext* explicit_context) {
  return explicit_context != nullptr ? explicit_context : Global();
}

// --- null-safe convenience wrappers -----------------------------------

inline void Count(ObsContext* context, Metric metric, int64_t delta = 1) {
  if (context != nullptr) context->metrics().Add(metric, delta);
}
inline void Observe(ObsContext* context, Metric metric, int64_t value) {
  if (context != nullptr) context->metrics().Observe(metric, value);
}
/// Into the global context (no-ops while it is unset).
inline void Count(Metric metric, int64_t delta = 1) {
  Count(Global(), metric, delta);
}
inline void Observe(Metric metric, int64_t value) {
  Observe(Global(), metric, value);
}

/// RAII trace span: starts timing at construction and, at scope exit,
/// records one TraceEvent into the context's flight recorder — and,
/// when `latency` names a histogram metric, one latency observation.
/// A null context makes the whole object a no-op. `name` must be a
/// string literal (TraceEvent stores the pointer).
class TraceSpan {
 public:
  TraceSpan(ObsContext* context, const char* name,
            std::optional<Metric> latency = std::nullopt)
      : context_(context),
        name_(name),
        latency_(latency),
        start_ns_(context != nullptr ? MonotonicNowNs() : 0) {}

  ~TraceSpan() {
    if (context_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.tid = CurrentTraceThreadId();
    event.start_ns = start_ns_;
    event.dur_ns = MonotonicNowNs() - start_ns_;
    context_->trace().Record(event);
    if (latency_.has_value()) {
      context_->metrics().Observe(*latency_, event.dur_ns);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  ObsContext* context_;
  const char* name_;
  std::optional<Metric> latency_;
  int64_t start_ns_;
};

// Scoped span over the rest of the enclosing block. Usage:
//   LOGMINE_SPAN(ctx, "l2/mine", obs::Metric::kL2MineNs);
//   LOGMINE_SPAN_GLOBAL("store/build_index");
#define LOGMINE_SPAN_CONCAT_IMPL(a, b) a##b
#define LOGMINE_SPAN_CONCAT(a, b) LOGMINE_SPAN_CONCAT_IMPL(a, b)
#define LOGMINE_SPAN(context, ...)                          \
  ::logmine::obs::TraceSpan LOGMINE_SPAN_CONCAT(            \
      logmine_span_, __LINE__)((context), __VA_ARGS__)
#define LOGMINE_SPAN_GLOBAL(...) \
  LOGMINE_SPAN(::logmine::obs::Global(), __VA_ARGS__)

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_OBS_H_
