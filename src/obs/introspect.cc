#include "obs/introspect.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

#include "obs/export.h"
#include "obs/obs.h"

namespace logmine::obs {
namespace {

constexpr size_t kMaxRequestBytes = 4096;
constexpr size_t kMaxJournalTail = 4096;

Status Errno(std::string what) {
  what += ": ";
  what += std::strerror(errno);
  return Status::Internal(std::move(what));
}

// Sends all of `data`, tolerating short writes; a dead peer aborts.
void SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<size_t>(n));
  }
}

}  // namespace

Result<std::unique_ptr<IntrospectionServer>> IntrospectionServer::Start(
    const std::string& socket_path, IntrospectionHandlers handlers) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long for sun_path: " +
                                   socket_path);
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Errno("bind " + socket_path);
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 8) != 0) {
    const Status status = Errno("listen " + socket_path);
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    return status;
  }
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    const Status status = Errno("pipe");
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    return status;
  }
  return std::unique_ptr<IntrospectionServer>(new IntrospectionServer(
      socket_path, std::move(handlers), listen_fd, wake[0], wake[1]));
}

IntrospectionServer::IntrospectionServer(std::string socket_path,
                                         IntrospectionHandlers handlers,
                                         int listen_fd, int wake_read_fd,
                                         int wake_write_fd)
    : socket_path_(std::move(socket_path)),
      handlers_(std::move(handlers)),
      listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      thread_([this] { Serve(); }) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  ::unlink(socket_path_.c_str());
}

uint64_t IntrospectionServer::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

void IntrospectionServer::Serve() {
  // fd -> unprocessed request bytes. Connections are cheap (local
  // scrapers); poll() multiplexes them all on this one thread.
  std::map<int, std::string> clients;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buffer] : clients) {
      fds.push_back({fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/250) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // Stop() woke us
    if ((fds[1].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) clients.emplace(client, std::string());
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = fds[i].fd;
      char buf[1024];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        ::close(fd);
        clients.erase(fd);
        continue;
      }
      std::string& pending = clients[fd];
      pending.append(buf, static_cast<size_t>(n));
      size_t newline;
      while ((newline = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, newline);
        pending.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        SendAll(fd, HandleRequest(line));
      }
      if (pending.size() > kMaxRequestBytes) {
        ::close(fd);  // a line that long is not one of our commands
        clients.erase(fd);
      }
    }
  }
  for (const auto& [fd, buffer] : clients) ::close(fd);
}

std::string IntrospectionServer::HandleRequest(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string payload;
  if (line == "STATUSZ") {
    payload = handlers_.statusz ? handlers_.statusz() : "";
  } else if (line == "METRICS") {
    payload = handlers_.metrics ? handlers_.metrics() : "";
  } else if (line == "HEALTH") {
    payload = handlers_.health ? handlers_.health() : "ok";
  } else if (line.rfind("JOURNAL TAIL", 0) == 0) {
    size_t n = 32;
    if (line.size() > 13) {
      n = static_cast<size_t>(std::strtoul(line.c_str() + 13, nullptr, 10));
      n = std::min(std::max<size_t>(n, 1), kMaxJournalTail);
    }
    if (handlers_.journal_tail) {
      for (const std::string& journal_line : handlers_.journal_tail(n)) {
        payload += journal_line;
        payload += '\n';
      }
      if (!payload.empty()) payload.pop_back();
    }
  } else {
    payload = "ERR unknown command";
  }
  // "."-terminated framing; a payload line of "." would break it, but
  // no handler emits one (JSON, OpenMetrics and tables never do).
  if (!payload.empty() && payload.back() != '\n') payload += '\n';
  payload += ".\n";
  return payload;
}

IntrospectionHandlers MakeObsHandlers(ObsContext* context,
                                      std::function<std::string()> health) {
  IntrospectionHandlers handlers;
  handlers.statusz = [context] {
    std::string page = "run " + context->journal().run_id() + "\n";
    page += "== metrics (non-zero) ==\n";
    page += context->metrics().Snapshot().ToText();
    page += "== resource usage ==\n";
    page += context->probe().ToJson();
    page += '\n';
    return page;
  };
  handlers.metrics = [context] {
    return ToOpenMetrics(context->metrics().Snapshot());
  };
  handlers.health = std::move(health);
  handlers.journal_tail = [context](size_t n) {
    return context->journal().Tail(n);
  };
  return handlers;
}

Result<std::string> IntrospectionQuery(const std::string& socket_path,
                                       const std::string& request) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("connect " + socket_path);
    ::close(fd);
    return status;
  }
  const std::string line = request + "\n";
  SendAll(fd, line);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
    if (response == ".\n" ||
        (response.size() >= 3 &&
         response.compare(response.size() - 3, 3, "\n.\n") == 0)) {
      break;
    }
  }
  ::close(fd);
  // Strip the terminator line.
  if (response == ".\n") return std::string();
  const size_t at = response.rfind("\n.\n");
  if (at == std::string::npos) {
    return Status::Internal("truncated introspection response");
  }
  return response.substr(0, at + 1);
}

}  // namespace logmine::obs
