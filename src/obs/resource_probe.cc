#include "obs/resource_probe.h"

#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace logmine::obs {
namespace {

int64_t TimevalToNs(const timeval& tv) {
  return int64_t{tv.tv_sec} * 1'000'000'000 + int64_t{tv.tv_usec} * 1'000;
}

int64_t ThreadCpuNs() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return int64_t{ts.tv_sec} * 1'000'000'000 + ts.tv_nsec;
}

int64_t CurrentRssKb() {
  // statm field 2 is resident pages; absent (non-Linux) reads as 0.
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long resident_pages = 0;
  const int matched = std::fscanf(f, "%ld %ld", &total_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return int64_t{resident_pages} * page_kb;
}

}  // namespace

ResourceSample ResourceSample::Now() {
  ResourceSample sample;
  sample.wall_ns = MonotonicNowNs();
  sample.thread_cpu_ns = ThreadCpuNs();
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.user_cpu_ns = TimevalToNs(usage.ru_utime);
    sample.system_cpu_ns = TimevalToNs(usage.ru_stime);
    sample.max_rss_kb = usage.ru_maxrss;  // Linux: kilobytes
    sample.voluntary_switches = usage.ru_nvcsw;
    sample.involuntary_switches = usage.ru_nivcsw;
  }
  sample.current_rss_kb = CurrentRssKb();
  return sample;
}

void ResourceProbe::RecordStage(std::string_view stage,
                                const ResourceSample& begin,
                                const ResourceSample& end) {
  std::lock_guard<std::mutex> lock(mu_);
  StageUsage* usage = nullptr;
  for (StageUsage& existing : stages_) {
    if (existing.stage == stage) {
      usage = &existing;
      break;
    }
  }
  if (usage == nullptr) {
    stages_.emplace_back();
    usage = &stages_.back();
    usage->stage = std::string(stage);
  }
  ++usage->invocations;
  usage->wall_ns += end.wall_ns - begin.wall_ns;
  usage->user_cpu_ns += end.user_cpu_ns - begin.user_cpu_ns;
  usage->system_cpu_ns += end.system_cpu_ns - begin.system_cpu_ns;
  usage->thread_cpu_ns += end.thread_cpu_ns - begin.thread_cpu_ns;
  usage->peak_rss_kb = std::max(usage->peak_rss_kb, end.max_rss_kb);
  const int64_t rss_delta = end.current_rss_kb - begin.current_rss_kb;
  if (rss_delta > 0) usage->rss_growth_kb += rss_delta;
  usage->involuntary_switches +=
      end.involuntary_switches - begin.involuntary_switches;
}

std::vector<StageUsage> ResourceProbe::Stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::string ResourceProbe::ToJson() const {
  const std::vector<StageUsage> stages = Stages();
  std::string out = "{\"stages\":[";
  bool first = true;
  for (const StageUsage& stage : stages) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"";
    // Stage names are identifiers chosen by this codebase; escape the
    // two JSON-breaking characters anyway.
    for (char c : stage.stage) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\",\"invocations\":" + std::to_string(stage.invocations) +
           ",\"wall_ns\":" + std::to_string(stage.wall_ns) +
           ",\"user_cpu_ns\":" + std::to_string(stage.user_cpu_ns) +
           ",\"system_cpu_ns\":" + std::to_string(stage.system_cpu_ns) +
           ",\"thread_cpu_ns\":" + std::to_string(stage.thread_cpu_ns) +
           ",\"peak_rss_kb\":" + std::to_string(stage.peak_rss_kb) +
           ",\"rss_growth_kb\":" + std::to_string(stage.rss_growth_kb) +
           ",\"involuntary_switches\":" +
           std::to_string(stage.involuntary_switches) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace logmine::obs
