#ifndef LOGMINE_OBS_TRACE_H_
#define LOGMINE_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"

namespace logmine::obs {

/// Nanoseconds on the process-wide steady clock, relative to the first
/// call (so trace timestamps are small and monotonic). Thread-safe.
int64_t MonotonicNowNs();

/// Small dense id of the calling thread (assigned on first use, stable
/// for the thread's lifetime) — the `tid` of every trace event.
uint32_t CurrentTraceThreadId();

/// One completed span. `name` must be a string literal (or outlive the
/// recorder): events store the pointer, not a copy, so recording stays
/// allocation-free.
struct TraceEvent {
  const char* name = "";
  uint32_t tid = 0;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
};

/// Bounded in-memory flight recorder: a fixed-capacity ring that keeps
/// the most recent `capacity` events and counts the rest as dropped —
/// tracing a long run can never exhaust memory, only forget the oldest
/// spans. Recording takes one short mutex hold (~a 32-byte copy); spans
/// are stage/task-granular, not per-log, so the lock is cold
/// (DESIGN.md §10 overhead budget).
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  void Record(const TraceEvent& event);

  size_t capacity() const { return capacity_; }
  /// Events ever recorded (including overwritten ones).
  uint64_t total_recorded() const;
  /// Events lost to ring overflow: total_recorded() - retained.
  uint64_t dropped() const;

  /// The retained window, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Chrome/Perfetto `trace_event` JSON (complete "X" events; load via
  /// chrome://tracing or ui.perfetto.dev). Timestamps in microseconds.
  std::string ToChromeTraceJson() const;
  /// Writes `ToChromeTraceJson()` to `path` (truncating).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t total_ = 0;
};

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_TRACE_H_
