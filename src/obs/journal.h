#ifndef LOGMINE_OBS_JOURNAL_H_
#define LOGMINE_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace logmine::obs {

class MetricsRegistry;

/// One typed key/value of a journal event. Values are pre-rendered JSON
/// fragments so emission is a single concatenation; build them through
/// the factories, never by hand.
struct JournalField {
  std::string key;
  std::string value;  ///< rendered JSON (quoted string, number, bool)

  static JournalField Str(std::string_view key, std::string_view value);
  static JournalField Num(std::string_view key, int64_t value);
  static JournalField Real(std::string_view key, double value);
  static JournalField Flag(std::string_view key, bool value);
};

/// Knobs of one journal.
struct JournalOptions {
  /// JSONL file to append to; empty keeps the journal memory-only (the
  /// tail ring still works, so introspection and postmortems do too).
  std::string path;
  /// Rotation threshold: when the current file exceeds this many bytes
  /// the journal rotates (`path` -> `path.1` -> ... -> dropped).
  size_t max_bytes_per_file = 4u << 20;
  /// Rotated generations kept besides the live file.
  size_t max_rotated_files = 2;
  /// Most-recent rendered lines kept in memory for `Tail()`.
  size_t tail_capacity = 256;
};

/// Crash-safe structured event journal: every stage / shard / epoch /
/// publish / quarantine / retry / breaker / health boundary appends one
/// wide JSONL event carrying the process-unique `run_id` and a
/// hierarchical span id ("sweep-1/d0.r2/a1"), flushed line-by-line so
/// the file is truthful up to the last boundary even after SIGKILL.
/// The trace ring answers "what was hot"; the journal answers "what
/// happened, in which attempt of which shard of which run" — and, being
/// on disk, survives the process.
///
/// Thread-safe: one short mutex per event; events are boundary-granular
/// (per stage/epoch, never per log line), so the lock is cold.
class Journal {
 public:
  explicit Journal(const JournalOptions& options = {},
                   MetricsRegistry* metrics = nullptr);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Process-unique id stamped on every event, so lines from interleaved
  /// or restarted runs never correlate by accident.
  const std::string& run_id() const { return run_id_; }

  /// Mints a new root span id "<prefix>-<n>" (n counts per journal):
  /// children append path segments by concatenation, e.g.
  /// BeginRootSpan("sweep") -> "sweep-1", shard cell -> "sweep-1/d0.r2",
  /// attempt 3 -> "sweep-1/d0.r2/a3".
  std::string BeginRootSpan(std::string_view prefix);

  /// Appends one event: {"ts_ns":..,"run":..,"span":..,"event":..,
  /// <fields>}. Flushes to disk before returning.
  void Emit(std::string_view span, std::string_view event,
            const std::vector<JournalField>& fields = {});

  /// The most recent `n` rendered lines (oldest first), capped by the
  /// tail capacity.
  std::vector<std::string> Tail(size_t n) const;

  /// Events emitted through this journal (including rotated-away ones).
  uint64_t events_emitted() const;
  /// File rotations performed.
  uint64_t rotations() const;
  const JournalOptions& options() const { return options_; }

 private:
  void RotateLocked();

  const JournalOptions options_;
  MetricsRegistry* const metrics_;  ///< may be null
  const std::string run_id_;
  std::atomic<uint64_t> next_span_{0};

  mutable std::mutex mu_;
  std::ofstream file_;
  size_t bytes_written_ = 0;
  uint64_t events_ = 0;
  uint64_t rotations_ = 0;
  std::deque<std::string> tail_;
};

/// Converts journal JSONL (one run's worth) into Chrome/Perfetto
/// `trace_event` JSON: events carrying a `dur_ns` field become complete
/// "X" spans, all others instant events, named "span event" and grouped
/// by root span. Lines that do not parse are skipped (a torn final line
/// after a crash is expected, not an error).
std::string JournalToChromeTrace(std::string_view jsonl);

/// Reads `journal_path` and writes the converted trace to `trace_path`.
Status ConvertJournalToChromeTrace(const std::string& journal_path,
                                   const std::string& trace_path);

}  // namespace logmine::obs

#endif  // LOGMINE_OBS_JOURNAL_H_
