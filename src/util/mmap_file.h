#ifndef LOGMINE_UTIL_MMAP_FILE_H_
#define LOGMINE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/result.h"

namespace logmine {

/// Read-only memory-mapped view of a whole file — the zero-copy ingest
/// path: the decoder parses straight out of the page cache instead of
/// draining the file through a stream into a heap buffer first.
///
/// Movable, not copyable; unmaps on destruction. An empty file maps to
/// an empty view without calling mmap (POSIX rejects zero-length maps).
/// The view stays valid for the lifetime of the object; a concurrent
/// writer mutating the file mid-read is out of contract (corpus writes
/// are atomic tmp+rename, so readers only ever map complete files).
class MmapFile {
 public:
  /// Maps `path` read-only. NotFound when the file does not exist,
  /// Internal on any other open/map failure (callers may fall back to
  /// ReadFileToString).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }
  size_t size() const { return size_; }

 private:
  void Reset() noexcept;

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_MMAP_FILE_H_
