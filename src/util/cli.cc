#include "util/cli.h"

#include <cstdlib>

#include "util/string_util.h"

namespace logmine {

Status CliFlags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      return Status::InvalidArgument("expected --name[=value], got: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
  return Status::OK();
}

bool CliFlags::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string CliFlags::GetString(std::string_view name,
                                std::string fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t CliFlags::GetInt(std::string_view name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : value;
}

double CliFlags::GetDouble(std::string_view name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end == nullptr || *end != '\0') ? fallback : value;
}

bool CliFlags::GetBool(std::string_view name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string lower = ToLower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return fallback;
}

}  // namespace logmine
