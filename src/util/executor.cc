#include "util/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/obs.h"

namespace logmine {

std::chrono::steady_clock::time_point StopDeadline(
    const RunOptions& options) {
  return options.deadline.count() > 0
             ? std::chrono::steady_clock::now() + options.deadline
             : std::chrono::steady_clock::time_point::max();
}

Status CheckStop(const CancelToken* cancel,
                 std::chrono::steady_clock::time_point deadline,
                 const char* what) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(std::string(what) + " cancelled");
  }
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded(std::string(what) +
                                    " deadline expired");
  }
  return Status::OK();
}

RunOptions RemainingOptions(
    const RunOptions& base,
    std::chrono::steady_clock::time_point deadline) {
  RunOptions options = base;
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    options.deadline = std::chrono::milliseconds{0};
  } else {
    options.deadline = std::max(
        std::chrono::milliseconds{1},
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now()));
  }
  return options;
}

// State shared between the caller of a ParallelFor and the helper tasks
// it enqueues. Helpers hold a shared_ptr, so stale helpers that wake up
// after the loop finished (and the caller returned) only touch live
// memory and exit immediately.
struct Executor::ForLoop {
  size_t count = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<size_t> skipped{0};
  // Cooperative stop controls (null/zero when unused).
  const CancelToken* cancel = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::mutex mu;
  std::condition_variable all_done;
  std::exception_ptr error;  // first failure, guarded by mu

  // True once the loop should stop claiming fresh indices. Checked
  // between indices only — a running fn(i) is never preempted.
  bool Stopped() const {
    if (cancel != nullptr && cancel->cancelled()) return true;
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return true;
    }
    return false;
  }

  // Claims and runs indices until none remain. Returns when the claimed
  // range is exhausted (other participants may still be running). Once
  // stopped, remaining indices are claimed and counted as skipped so the
  // completion count still reaches `count` and waiters wake.
  void Drain() {
    const bool stoppable = cancel != nullptr || has_deadline;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (stoppable && Stopped()) {
        skipped.fetch_add(1, std::memory_order_relaxed);
      } else {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mu);  // pairs with the wait
        all_done.notify_all();
      }
    }
  }
};

Executor::Executor(int num_workers) {
  if (num_workers <= 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (num_workers <= 0) num_workers = 1;
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Executor& Executor::Shared() {
  static Executor* shared = [] {
    int workers = 0;
    if (const char* env = std::getenv("LOGMINE_EXECUTOR_THREADS")) {
      workers = std::atoi(env);
    }
    return new Executor(workers);
  }();
  return *shared;
}

void Executor::WorkerMain() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const int64_t dequeue_ns = obs::MonotonicNowNs();
    // The queue-depth gauge and per-task latency use whatever context
    // is globally installed at execution time; per-task timing is cheap
    // here because tasks are coarse (whole ParallelFor drains, Submit
    // closures), never per-index work.
    // Pinned, not just loaded: a ParallelFor task signals its waiters
    // from inside task(), so the context owner can uninstall and destroy
    // the context before the post-task writes below run. The pin makes
    // that teardown wait for us.
    obs::ObsContext* ctx = obs::AcquireGlobal();
    obs::Count(ctx, obs::Metric::kExecutorQueueDepth, -1);
    if (ctx != nullptr) {
      obs::Observe(ctx, obs::Metric::kExecutorQueueWaitNs,
                   dequeue_ns - task.enqueue_ns);
      const int64_t start_ns = obs::MonotonicNowNs();
      task.fn();
      obs::Observe(ctx, obs::Metric::kExecutorTaskNs,
                   obs::MonotonicNowNs() - start_ns);
      obs::Count(ctx, obs::Metric::kExecutorTasksCompleted);
      obs::ReleaseGlobal();
    } else {
      task.fn();
    }
  }
}

std::future<void> Executor::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  obs::Count(obs::Metric::kExecutorTasksSubmitted);
  obs::Count(obs::Metric::kExecutorQueueDepth, 1);
  bool saturated;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A non-empty queue at submission time means every worker is busy
    // and this task will wait — the backpressure signal the serve layer
    // watches alongside the depth gauge.
    saturated = !queue_.empty();
    queue_.push_back({[task] { (*task)(); }, obs::MonotonicNowNs()});
  }
  if (saturated) obs::Count(obs::Metric::kExecutorSaturation);
  cv_.notify_one();
  return future;
}

void Executor::ParallelFor(size_t count,
                           const std::function<void(size_t)>& fn,
                           int max_parallelism) const {
  RunOptions options;
  options.max_parallelism = max_parallelism;
  ParallelFor(count, fn, options);  // cannot cancel: status is always OK
}

Status Executor::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             const RunOptions& options) const {
  if (count == 0) return Status::OK();

  auto loop = std::make_shared<ForLoop>();
  loop->count = count;
  loop->fn = &fn;
  loop->cancel = options.cancel;
  if (options.deadline.count() > 0) {
    loop->has_deadline = true;
    loop->deadline = std::chrono::steady_clock::now() + options.deadline;
  }

  obs::Count(obs::Metric::kExecutorParallelLoops);
  int helpers = num_workers();
  if (options.max_parallelism > 0) {
    helpers = std::min(helpers, options.max_parallelism - 1);
  }
  helpers = std::min<int>(helpers, static_cast<int>(count) - 1);
  if (helpers <= 0) {
    loop->Drain();  // serial on the caller, same stop/skip semantics
  } else {
    obs::Count(obs::Metric::kExecutorQueueDepth, helpers);
    bool saturated;
    {
      std::lock_guard<std::mutex> lock(mu_);
      saturated = !queue_.empty();
      const int64_t enqueue_ns = obs::MonotonicNowNs();
      for (int h = 0; h < helpers; ++h) {
        queue_.push_back({[loop] { loop->Drain(); }, enqueue_ns});
      }
    }
    if (saturated) obs::Count(obs::Metric::kExecutorSaturation);
    cv_.notify_all();
    loop->Drain();  // the caller always participates — no nesting deadlock
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->all_done.wait(lock, [&] {
      return loop->done.load(std::memory_order_acquire) == count;
    });
  }
  if (loop->error) std::rethrow_exception(loop->error);
  const size_t skipped = loop->skipped.load(std::memory_order_relaxed);
  if (skipped > 0) {
    obs::Count(obs::Metric::kExecutorIndicesSkipped,
               static_cast<int64_t>(skipped));
    const std::string detail = "skipped " + std::to_string(skipped) + " of " +
                               std::to_string(count) + " indices";
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled("ParallelFor cancelled: " + detail);
    }
    return Status::DeadlineExceeded("ParallelFor deadline expired: " + detail);
  }
  return Status::OK();
}

void Executor::ParallelForChunks(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t)>& fn,
    int max_parallelism) const {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (count + grain - 1) / grain;
  ParallelFor(
      num_chunks,
      [&](size_t chunk) {
        const size_t begin = chunk * grain;
        fn(begin, std::min(begin + grain, count));
      },
      max_parallelism);
}

}  // namespace logmine
