#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.h"
#include "util/rng.h"

namespace logmine {

bool IsRetryable(StatusCode code) { return code == StatusCode::kInternal; }

Status RetryWithBackoff(const RetryPolicy& policy, std::string_view op_name,
                        const std::function<Status()>& op, RetryStats* stats,
                        const SleepFn& sleep) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Rng rng = Rng(policy.seed).Fork(op_name);
  RetryStats local;
  Status last = Status::OK();
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  const auto retryable = [&policy](StatusCode code) {
    return policy.retryable ? policy.retryable(code) : IsRetryable(code);
  };
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++local.attempts;
    last = op();
    if (last.ok() || !retryable(last.code())) break;
    if (attempt + 1 == max_attempts) break;
    const double capped =
        std::min(backoff, static_cast<double>(policy.max_backoff_ms));
    const double factor =
        policy.jitter > 0.0
            ? rng.Uniform(1.0 - policy.jitter, 1.0 + policy.jitter)
            : 1.0;
    const int64_t delay_ms =
        std::max<int64_t>(0, static_cast<int64_t>(capped * factor));
    local.total_backoff_ms += delay_ms;
    if (sleep) {
      sleep(delay_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    backoff *= policy.backoff_multiplier;
  }
  obs::Count(obs::Metric::kRetryAttempts, local.attempts);
  obs::Count(obs::Metric::kRetryBackoffMsTotal, local.total_backoff_ms);
  if (stats != nullptr) *stats = local;
  return last;
}

}  // namespace logmine
