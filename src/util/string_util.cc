#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace logmine {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string_view> TokenizeIdentifiers(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < text.size()) {
    while (i < text.size() && !is_ident(text[i])) ++i;
    size_t begin = i;
    while (i < text.size() && is_ident(text[i])) ++i;
    if (i > begin) tokens.push_back(text.substr(begin, i - begin));
  }
  return tokens;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(s);
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace logmine
