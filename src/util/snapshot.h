#ifndef LOGMINE_UTIL_SNAPSHOT_H_
#define LOGMINE_UTIL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace logmine {

/// CRC-32 (IEEE 802.3 polynomial, the zlib variant) of `bytes`.
uint32_t Crc32(std::string_view bytes);

/// Current version of the snapshot container format. Bump when the
/// *container* layout changes; section payload layouts are versioned by
/// the writers (see core/serialization.h).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Builds one snapshot: a versioned, sectioned, CRC-protected byte
/// string — the on-disk unit of the checkpoint/recovery layer.
///
/// Layout (all integers little-endian, fixed width):
///   u32 magic "LMSN" | u32 version
///   per section: u32 name_len | name | u64 payload_len | payload
///   footer: u32 magic "PANS" | u32 crc32(everything before the footer)
///
/// The per-section length prefixes let a reader skip unknown sections,
/// and the footer CRC turns any truncation or bit rot anywhere in the
/// file into a detectable parse failure instead of silently wrong state.
///
/// Example:
///   SnapshotWriter w;
///   w.BeginSection("meta");
///   w.PutU64(fingerprint);
///   w.EndSection();
///   std::string bytes = std::move(w).Finish();
class SnapshotWriter {
 public:
  explicit SnapshotWriter(uint32_t version = kSnapshotVersion);

  /// Starts a named section; every Put* call lands in it.
  void BeginSection(std::string_view name);
  /// Closes the current section, patching its length prefix.
  void EndSection();

  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutBool(bool v);
  /// Length-prefixed (u64) byte string.
  void PutString(std::string_view s);

  /// Appends the CRC footer and returns the finished snapshot. The
  /// writer is spent afterwards. Pre-condition: no open section.
  std::string Finish() &&;

 private:
  std::string out_;
  size_t payload_len_at_ = 0;  ///< offset of the open section's length prefix
  bool in_section_ = false;
};

/// Bounds-checked reader over one section's payload. Views into the
/// owning SnapshotReader's buffer — keep the reader alive while cursors
/// are in use. Every read fails with ParseError instead of walking off
/// the end, so a payload truncated *inside* a section (CRC collisions
/// aside, only possible with a hand-built file) still cannot crash.
class SectionCursor {
 public:
  SectionCursor(std::string_view payload) : payload_(payload) {}

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();

  size_t remaining() const { return payload_.size() - pos_; }
  /// ParseError when payload bytes remain — catches layout drift where
  /// the decoder read less than the encoder wrote.
  Status ExpectEnd() const;

 private:
  Result<std::string_view> Take(size_t n);

  std::string_view payload_;
  size_t pos_ = 0;
};

/// Parses and validates a snapshot produced by SnapshotWriter.
///
/// Validation order: container magic -> version -> footer magic -> CRC
/// -> section structure. A version mismatch is FailedPrecondition (the
/// recovery layer treats it as a stale generation); every other defect
/// is ParseError.
class SnapshotReader {
 public:
  static Result<SnapshotReader> Parse(std::string bytes,
                                      uint32_t expected_version =
                                          kSnapshotVersion);

  uint32_t version() const { return version_; }
  bool HasSection(std::string_view name) const;
  /// Cursor over the named section's payload; NotFound when absent.
  Result<SectionCursor> Section(std::string_view name) const;

 private:
  SnapshotReader() = default;

  std::string bytes_;
  uint32_t version_ = 0;
  /// name -> (offset, length) into bytes_.
  std::vector<std::pair<std::string, std::pair<size_t, size_t>>> sections_;
};

/// Writes `bytes` to `path` atomically and durably: the data goes to a
/// sibling tmp file which is fsynced, renamed into place, and the parent
/// directory is fsynced so the rename itself survives a crash (tmp +
/// rename alone leaves a window where power loss forgets the rename and
/// resurfaces the old file — or, worse, loses both names). A crash at
/// any instant leaves either the old file or the complete new one at
/// `path`, never a torn file and never a stray tmp. Failures are
/// Internal (retryable, see util/retry.h); the tmp file is removed on
/// every failure path. The shared crash-safety primitive of
/// WriteSnapshotFile, WriteCorpusFile and the columnar writer.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Writes `bytes` to `path` via `WriteFileAtomic`, recording checkpoint
/// metrics and spans.
Status WriteSnapshotFile(const std::string& path, std::string_view bytes);

/// Reads a whole file. NotFound when it does not exist; Internal on I/O
/// failure.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace logmine

#endif  // LOGMINE_UTIL_SNAPSHOT_H_
