#include "util/wildcard.h"

#include <algorithm>
#include <bit>

namespace logmine {
namespace {

constexpr size_t kNpos = std::string_view::npos;

// Does `segment` ('?'-wildcards, no '*') match `text` at `pos`?
// Pre-condition: pos + segment.size() <= text.size().
bool SegmentMatchesAt(const std::string& segment, std::string_view text,
                      size_t pos) {
  for (size_t i = 0; i < segment.size(); ++i) {
    if (segment[i] != '?' && segment[i] != text[pos + i]) return false;
  }
  return true;
}

// Leftmost position >= from where `segment` matches inside
// text[0, end_limit). Leftmost is optimal for in-order segment
// placement: every segment has fixed length, so the earliest feasible
// end position dominates all later ones.
size_t FindSegment(const std::string& segment, std::string_view text,
                   size_t from, size_t end_limit) {
  if (segment.size() > end_limit) return kNpos;
  if (segment.find('?') == std::string::npos) {
    const size_t found = text.substr(0, end_limit).find(segment, from);
    return found;
  }
  for (size_t pos = from; pos + segment.size() <= end_limit; ++pos) {
    if (SegmentMatchesAt(segment, text, pos)) return pos;
  }
  return kNpos;
}

}  // namespace

CompiledWildcard::CompiledWildcard(std::string_view pattern)
    : pattern_(pattern) {
  anchored_front_ = !pattern.empty() && pattern.front() != '*';
  anchored_back_ = !pattern.empty() && pattern.back() != '*';
  size_t i = 0;
  while (i < pattern.size()) {
    if (pattern[i] == '*') {
      ++i;
      continue;
    }
    size_t begin = i;
    while (i < pattern.size() && pattern[i] != '*') ++i;
    segments_.emplace_back(pattern.substr(begin, i - begin));
    min_length_ += i - begin;
  }
  if (pattern.empty()) {
    // "" matches only the empty text; model as anchored with no
    // segments (the segment-free unanchored case means "*").
    anchored_front_ = anchored_back_ = true;
  }
  if (anchored_front_ && !segments_.empty() && segments_.front()[0] != '?') {
    first_byte_gate_ = segments_.front()[0];
  }
}

bool CompiledWildcard::Matches(std::string_view text) const {
  if (segments_.empty()) {
    return anchored_front_ ? text.empty() : true;  // "" vs "*", "**", ...
  }
  if (text.size() < min_length_) return false;
  size_t first = 0;
  size_t last = segments_.size();
  size_t pos = 0;
  size_t end_limit = text.size();
  if (anchored_back_) {
    const std::string& tail = segments_.back();
    const size_t at = text.size() - tail.size();
    if (!SegmentMatchesAt(tail, text, at)) return false;
    --last;
    end_limit = at;  // earlier segments may not overlap the tail
  }
  if (anchored_front_) {
    if (first == last) {
      // Pattern without '*': the tail check above already matched at
      // the end, so only the exact length is left to verify.
      return text.size() == min_length_;
    }
    const std::string& head = segments_.front();
    if (head.size() > end_limit || !SegmentMatchesAt(head, text, 0)) {
      return false;
    }
    pos = head.size();
    ++first;
  }
  for (size_t i = first; i < last; ++i) {
    const size_t found = FindSegment(segments_[i], text, pos, end_limit);
    if (found == kNpos) return false;
    pos = found + segments_[i].size();
  }
  return true;
}

WildcardSet::WildcardSet(const std::vector<std::string>& patterns) {
  for (const std::string& pattern : patterns) {
    // "*literal*": exactly one segment, no '?', unanchored both sides.
    const bool pure_infix =
        pattern.size() >= 3 && pattern.front() == '*' &&
        pattern.back() == '*' &&
        pattern.find_first_of("*?", 1) == pattern.size() - 1;
    if (pure_infix && needles_.size() < 32) {
      const std::string needle = pattern.substr(1, pattern.size() - 2);
      table_[static_cast<unsigned char>(needle.front())] |=
          uint32_t{1} << needles_.size();
      needles_.push_back(needle);
    } else {
      patterns_.emplace_back(pattern);
    }
  }
}

bool WildcardSet::MatchesAny(std::string_view text) const {
  if (MatchesAnyNonInfix(text)) return true;
  if (!needles_.empty()) {
    for (size_t pos = 0; pos < text.size(); ++pos) {
      if (table_[static_cast<unsigned char>(text[pos])] != 0 &&
          InfixMatchesAt(text, pos)) {
        return true;
      }
    }
  }
  return false;
}

bool WildcardSet::MatchesAnyNonInfix(std::string_view text) const {
  // Almost every pattern that is not pure-infix is front-anchored on a
  // literal byte; comparing that byte here skips the whole Matches call
  // for the typical non-matching message.
  const char head = text.empty() ? '\0' : text.front();
  for (const CompiledWildcard& pattern : patterns_) {
    const char gate = pattern.first_byte_gate();
    if (gate != 0 && gate != head) continue;
    if (pattern.Matches(text)) return true;
  }
  return false;
}

bool WildcardSet::InfixMatchesAt(std::string_view text, size_t pos) const {
  uint32_t mask = table_[static_cast<unsigned char>(text[pos])];
  while (mask != 0) {
    const int idx = std::countr_zero(mask);
    mask &= mask - 1;
    const std::string& needle = needles_[static_cast<size_t>(idx)];
    if (needle.size() <= text.size() - pos &&
        text.compare(pos, needle.size(), needle) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace logmine
