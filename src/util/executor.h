#ifndef LOGMINE_UTIL_EXECUTOR_H_
#define LOGMINE_UTIL_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace logmine {

/// Cooperative cancellation flag shared between a controller and the
/// loops it wants to stop. Thread-safe; cancelling is one-way and sticky.
/// Loops observe it between work items — a running item is never
/// preempted, it finishes and then no further items start.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Optional controls of one ParallelFor run. Default-constructed options
/// reproduce the plain overload exactly.
struct RunOptions {
  /// 0 = no cap beyond the pool size; 1 = serial on the caller; n = at
  /// most n threads total (caller included).
  int max_parallelism = 0;
  /// When non-null, checked before each index: once cancelled, remaining
  /// indices are skipped (already-running ones finish).
  const CancelToken* cancel = nullptr;
  /// Wall-clock budget for the loop; <= 0 = none. Measured from the call;
  /// once exhausted, remaining indices are skipped.
  std::chrono::milliseconds deadline{0};
};

/// Pins `options`' relative deadline to an absolute instant, for code
/// that spreads one budget over several sequential phases; the sentinel
/// time_point::max() means "no deadline".
std::chrono::steady_clock::time_point StopDeadline(const RunOptions& options);

/// One cooperative checkpoint inside a long serial loop: Cancelled once
/// `cancel` fired, DeadlineExceeded once `deadline` passed, OK
/// otherwise. `what` names the loop in the error message.
Status CheckStop(const CancelToken* cancel,
                 std::chrono::steady_clock::time_point deadline,
                 const char* what);

/// `base` with its deadline replaced by whatever budget remains until
/// the absolute `deadline` (floored at 1 ms so an expired budget still
/// surfaces as DeadlineExceeded inside the loop, not as a hang).
RunOptions RemainingOptions(const RunOptions& base,
                            std::chrono::steady_clock::time_point deadline);

/// Fixed-size shared worker pool: the single place all compute-bound
/// parallelism in the library runs. Miners no longer spawn raw threads
/// per call; they borrow workers from one process-wide pool (see
/// `Shared()`), so a pipeline running four miners concurrently and a
/// miner fanning out over slots contend for the same bounded set of OS
/// threads.
///
/// Determinism contract: `ParallelFor` only schedules *which thread*
/// runs index i; callers must key any randomness by i (not by thread)
/// and merge per-index outputs in index order. Every miner in
/// `core/` follows that discipline, which is why results are
/// byte-identical for any thread count.
///
/// Nesting is safe: the calling thread always participates in its own
/// loop, so a worker that starts a nested `ParallelFor` makes progress
/// even when every other worker is busy (no pool-exhaustion deadlock).
///
/// Failure isolation: an exception thrown by one index never wedges the
/// pool — the loop drains, the first exception is rethrown to the
/// submitting caller, and the workers return to the queue, so subsequent
/// loops on the same pool are unaffected.
class Executor {
 public:
  /// `num_workers` background threads; 0 = hardware concurrency.
  /// The effective parallelism of a loop is workers + the caller.
  explicit Executor(int num_workers = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, created on first use with one worker per
  /// hardware thread (override with LOGMINE_EXECUTOR_THREADS). Never
  /// destroyed — workers idle on a condition variable when unused.
  static Executor& Shared();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. The future rethrows the task's exception.
  /// Tasks run in submission order (single FIFO queue) but may overlap
  /// across workers; do not submit tasks that block on later tasks.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, count), blocking until all are done.
  /// The calling thread participates; up to max_parallelism - 1 workers
  /// help (0 = no cap beyond the pool size; 1 = run serially on the
  /// caller). Indices are claimed in ascending order. If any invocation
  /// throws, the first exception (by completion time) is rethrown here
  /// after the loop drains; remaining indices still run.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   int max_parallelism = 0) const;

  /// Cancellable/deadlined variant. Returns OK when every index ran;
  /// Cancelled or DeadlineExceeded (naming how many indices were
  /// skipped) when `options.cancel` fired or `options.deadline` expired
  /// mid-loop. Always blocks until the indices that did start have
  /// finished, so shared state the tasks touch stays safe to destroy on
  /// return. Exceptions propagate as in the plain overload.
  Status ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                     const RunOptions& options) const;

  /// Chunked variant: fn(begin, end) over consecutive ranges of at most
  /// `grain` indices. Chunk boundaries depend only on (count, grain), so
  /// per-chunk accumulators merged in chunk order are deterministic for
  /// any thread count.
  void ParallelForChunks(size_t count, size_t grain,
                         const std::function<void(size_t, size_t)>& fn,
                         int max_parallelism = 0) const;

 private:
  struct ForLoop;  // shared state of one ParallelFor

  /// Queue entry: the task plus its enqueue instant, so dequeue can
  /// record the on-queue wait (executor.queue_wait_ns sketch) — the
  /// time-unit face of the saturation counter.
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerMain();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_EXECUTOR_H_
