#ifndef LOGMINE_UTIL_EXECUTOR_H_
#define LOGMINE_UTIL_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace logmine {

/// Fixed-size shared worker pool: the single place all compute-bound
/// parallelism in the library runs. Miners no longer spawn raw threads
/// per call; they borrow workers from one process-wide pool (see
/// `Shared()`), so a pipeline running four miners concurrently and a
/// miner fanning out over slots contend for the same bounded set of OS
/// threads.
///
/// Determinism contract: `ParallelFor` only schedules *which thread*
/// runs index i; callers must key any randomness by i (not by thread)
/// and merge per-index outputs in index order. Every miner in
/// `core/` follows that discipline, which is why results are
/// byte-identical for any thread count.
///
/// Nesting is safe: the calling thread always participates in its own
/// loop, so a worker that starts a nested `ParallelFor` makes progress
/// even when every other worker is busy (no pool-exhaustion deadlock).
class Executor {
 public:
  /// `num_workers` background threads; 0 = hardware concurrency.
  /// The effective parallelism of a loop is workers + the caller.
  explicit Executor(int num_workers = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, created on first use with one worker per
  /// hardware thread (override with LOGMINE_EXECUTOR_THREADS). Never
  /// destroyed — workers idle on a condition variable when unused.
  static Executor& Shared();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. The future rethrows the task's exception.
  /// Tasks run in submission order (single FIFO queue) but may overlap
  /// across workers; do not submit tasks that block on later tasks.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, count), blocking until all are done.
  /// The calling thread participates; up to max_parallelism - 1 workers
  /// help (0 = no cap beyond the pool size; 1 = run serially on the
  /// caller). Indices are claimed in ascending order. If any invocation
  /// throws, the first exception (by completion time) is rethrown here
  /// after the loop drains; remaining indices still run.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   int max_parallelism = 0) const;

  /// Chunked variant: fn(begin, end) over consecutive ranges of at most
  /// `grain` indices. Chunk boundaries depend only on (count, grain), so
  /// per-chunk accumulators merged in chunk order are deterministic for
  /// any thread count.
  void ParallelForChunks(size_t count, size_t grain,
                         const std::function<void(size_t, size_t)>& fn,
                         int max_parallelism = 0) const;

 private:
  struct ForLoop;  // shared state of one ParallelFor

  void WorkerMain();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_EXECUTOR_H_
