#ifndef LOGMINE_UTIL_RNG_H_
#define LOGMINE_UTIL_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace logmine {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used to derive independent seed streams from a single master seed.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic pseudo-random stream (xoshiro256**). Every stochastic
/// component of the library takes an explicit Rng so that experiments are
/// exactly reproducible from a single master seed.
///
/// Independent sub-streams are derived with `Fork`, keyed by a label, so
/// that adding a consumer never perturbs the draws seen by another.
class Rng {
 public:
  /// Seeds the stream; any 64-bit value (including 0) is valid.
  explicit Rng(uint64_t seed);

  /// Derives an independent child stream keyed on `label`.
  Rng Fork(std::string_view label) const;

  /// Derives an independent child stream keyed on an integer — the
  /// allocation-free fork for hot loops that already have a dense
  /// (slot, pair) key. Streams for distinct keys are independent of
  /// each other and of every label-keyed fork.
  Rng Fork(uint64_t key) const;

  /// Next raw 64 bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Standard normal via Box-Muller (no state cached; one draw = two
  /// uniforms, keeping replay independent of call parity).
  double Normal(double mean, double stddev);

  /// Poisson draw with mean `lambda` (Knuth for small lambda, normal
  /// approximation above 64).
  int64_t Poisson(double lambda);

  /// Index drawn from the discrete distribution proportional to `weights`.
  /// Requires a non-empty vector with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_RNG_H_
