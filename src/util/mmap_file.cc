#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace logmine {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("cannot open for reading: " + path);
    }
    return Status::Internal("open " + path + " failed: " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat " + path + " failed: " +
                           std::strerror(err));
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* mapped = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap " + path + " failed: " +
                              std::strerror(err));
    }
    out.data_ = mapped;
    // A corpus decode reads the whole map front to back; tell the kernel
    // so readahead stays aggressive even under memory pressure.
    ::madvise(mapped, out.size_, MADV_SEQUENTIAL);
  }
  // The mapping pins the pages; the descriptor is no longer needed.
  ::close(fd);
  return out;
}

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::Reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

}  // namespace logmine
