#include "util/table_printer.h"

#include <algorithm>

namespace logmine {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  size_t cols = headers_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return "";

  std::vector<size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      if (i > 0) line += " | ";
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
    }
    // Right-trim so empty trailing cells don't leave whitespace.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out;
  if (!headers_.empty()) {
    out += render_row(headers_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += widths[i] + (i > 0 ? 3 : 0);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string AsciiBar(int filled, int total, int width) {
  if (total <= 0 || width <= 0) return "";
  filled = std::clamp(filled, 0, total);
  const int cells = static_cast<int>(
      static_cast<double>(filled) / total * width + 0.5);
  std::string out(static_cast<size_t>(cells), '#');
  out.append(static_cast<size_t>(width - cells), '.');
  return out;
}

}  // namespace logmine
