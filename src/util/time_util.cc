#include "util/time_util.h"

#include <cstdio>

#include "util/string_util.h"

namespace logmine {

int64_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;                            // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;    // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

TimeMs TimeFromCivil(const CivilTime& civil) {
  const int64_t days = DaysFromCivil(civil.year, civil.month, civil.day);
  return days * kMillisPerDay + civil.hour * kMillisPerHour +
         civil.minute * kMillisPerMinute + civil.second * kMillisPerSecond +
         civil.millisecond;
}

CivilTime CivilFromTime(TimeMs t) {
  int64_t days = t / kMillisPerDay;
  TimeMs rem = t % kMillisPerDay;
  if (rem < 0) {
    rem += kMillisPerDay;
    --days;
  }
  CivilTime civil;
  CivilFromDays(days, &civil.year, &civil.month, &civil.day);
  civil.hour = static_cast<int>(rem / kMillisPerHour);
  rem %= kMillisPerHour;
  civil.minute = static_cast<int>(rem / kMillisPerMinute);
  rem %= kMillisPerMinute;
  civil.second = static_cast<int>(rem / kMillisPerSecond);
  civil.millisecond = static_cast<int>(rem % kMillisPerSecond);
  return civil;
}

int DayOfWeek(TimeMs t) {
  int64_t days = t / kMillisPerDay;
  if (t % kMillisPerDay < 0) --days;
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  int dow = static_cast<int>((days + 3) % 7);
  return dow < 0 ? dow + 7 : dow;
}

bool IsWeekend(TimeMs t) { return DayOfWeek(t) >= 5; }

int HourOfDay(TimeMs t) {
  TimeMs rem = t % kMillisPerDay;
  if (rem < 0) rem += kMillisPerDay;
  return static_cast<int>(rem / kMillisPerHour);
}

TimeMs StartOfDay(TimeMs t) {
  TimeMs rem = t % kMillisPerDay;
  if (rem < 0) rem += kMillisPerDay;
  return t - rem;
}

std::string FormatTime(TimeMs t) {
  const CivilTime c = CivilFromTime(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                c.year, c.month, c.day, c.hour, c.minute, c.second,
                c.millisecond);
  return buf;
}

std::string FormatDate(TimeMs t) {
  const CivilTime c = CivilFromTime(t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

Result<TimeMs> ParseTime(std::string_view text) {
  CivilTime c;
  int fields = std::sscanf(std::string(text).c_str(),
                           "%d-%d-%d %d:%d:%d.%d", &c.year, &c.month, &c.day,
                           &c.hour, &c.minute, &c.second, &c.millisecond);
  if (fields != 3 && fields != 6 && fields != 7) {
    return Status::ParseError("unrecognized timestamp: " + std::string(text));
  }
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour > 23 ||
      c.minute > 59 || c.second > 59 || c.millisecond > 999 || c.hour < 0 ||
      c.minute < 0 || c.second < 0 || c.millisecond < 0) {
    return Status::ParseError("timestamp field out of range: " +
                              std::string(text));
  }
  return TimeFromCivil(c);
}

}  // namespace logmine
