#ifndef LOGMINE_UTIL_RESULT_H_
#define LOGMINE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace logmine {

/// Value-or-Status return type: either holds a `T` or a non-OK `Status`.
///
/// Example:
///   Result<LogRecord> r = LineCodec::Decode(line);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors absl.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define LOGMINE_INTERNAL_CONCAT2(a, b) a##b
#define LOGMINE_INTERNAL_CONCAT(a, b) LOGMINE_INTERNAL_CONCAT2(a, b)
#define LOGMINE_INTERNAL_ASSIGN_OR_RETURN(var, lhs, rexpr) \
  auto var = (rexpr);                                      \
  if (!var.ok()) return var.status();                      \
  lhs = std::move(var).value()

/// Evaluates `rexpr` (a Result<T>), propagating failure; otherwise binds the
/// value to `lhs`. The temporary's name is unique per line, so multiple
/// uses in one scope do not collide.
#define LOGMINE_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  LOGMINE_INTERNAL_ASSIGN_OR_RETURN(                                   \
      LOGMINE_INTERNAL_CONCAT(_logmine_res_, __LINE__), lhs, rexpr)

}  // namespace logmine

#endif  // LOGMINE_UTIL_RESULT_H_
