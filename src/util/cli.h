#ifndef LOGMINE_UTIL_CLI_H_
#define LOGMINE_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace logmine {

/// Minimal command-line flag parser shared by the benchmark and example
/// binaries. Accepts `--name=value` and bare `--name` (value "true");
/// positional arguments are rejected so typos fail loudly.
///
/// Example:
///   CliFlags flags;
///   Status s = flags.Parse(argc, argv);
///   double scale = flags.GetDouble("scale", 1.0);
class CliFlags {
 public:
  CliFlags() = default;

  /// Parses argv[1..); returns InvalidArgument on malformed input.
  Status Parse(int argc, const char* const* argv);

  bool Has(std::string_view name) const;

  /// Typed getters returning `fallback` when the flag is absent.
  /// Malformed numeric values also fall back (the Parse step cannot know
  /// the intended type).
  std::string GetString(std::string_view name, std::string fallback) const;
  int64_t GetInt(std::string_view name, int64_t fallback) const;
  double GetDouble(std::string_view name, double fallback) const;
  bool GetBool(std::string_view name, bool fallback) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_CLI_H_
