#ifndef LOGMINE_UTIL_WILDCARD_H_
#define LOGMINE_UTIL_WILDCARD_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace logmine {

/// One glob pattern ('*' = any run, '?' = any one char) compiled into
/// its literal segments, so matching is a prefix check, a suffix check
/// and in-order segment searches instead of the generic backtracking
/// scan of `WildcardMatch`. Semantics are identical to `WildcardMatch`.
///
/// The fast paths matter because L3 evaluates its stop patterns against
/// *every* log message: a leading literal ("Received call *") rejects
/// on the first mismatching byte, and a pure-infix pattern
/// ("*keepalive*") reduces to one substring search.
class CompiledWildcard {
 public:
  explicit CompiledWildcard(std::string_view pattern);

  bool Matches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// When non-zero, `Matches(text)` is false for every text whose first
  /// byte differs — the pattern starts with this literal byte. Lets a
  /// set of anchored patterns reject a message on one byte compare
  /// without entering `Matches` at all.
  char first_byte_gate() const { return first_byte_gate_; }

 private:
  std::string pattern_;
  // Maximal '*'-free pieces of the pattern, in order (may contain '?').
  std::vector<std::string> segments_;
  bool anchored_front_ = false;  // pattern does not start with '*'
  bool anchored_back_ = false;   // pattern does not end with '*'
  size_t min_length_ = 0;        // sum of segment lengths
  char first_byte_gate_ = 0;     // see first_byte_gate()
};

/// A set of compiled patterns with any-match semantics — the shape of
/// L3's `IsStopped`. Pure-infix patterns ("*literal*") are additionally
/// grouped into one single-pass multi-substring scan with a first-byte
/// dispatch table, so a set dominated by infix patterns (like the
/// default stop list) costs one traversal of the text instead of one
/// substring search per pattern.
class WildcardSet {
 public:
  explicit WildcardSet(const std::vector<std::string>& patterns);

  bool MatchesAny(std::string_view text) const;

  /// Only the compiled (non-"*literal*") patterns — callers that scan
  /// the infix needles themselves (see L3's fused scan) combine this
  /// with InfixMatchesAt over their own candidate positions.
  bool MatchesAnyNonInfix(std::string_view text) const;

  /// Does some infix needle match starting exactly at `pos`?
  /// Pre-condition: pos < text.size().
  bool InfixMatchesAt(std::string_view text, size_t pos) const;

  /// The literal cores of the grouped "*literal*" patterns.
  const std::vector<std::string>& infix_needles() const { return needles_; }

  size_t size() const { return patterns_.size() + needles_.size(); }

 private:
  std::vector<CompiledWildcard> patterns_;  // everything not groupable
  // The literal cores of grouped "*literal*" patterns; table_[byte] is
  // the bitmask of needles whose first byte is `byte`.
  std::vector<std::string> needles_;
  std::array<uint32_t, 256> table_{};
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_WILDCARD_H_
