#ifndef LOGMINE_UTIL_TIME_UTIL_H_
#define LOGMINE_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace logmine {

/// All timestamps in the library are milliseconds since the Unix epoch
/// (UTC), matching the 1 ms resolution of the paper's logging system.
using TimeMs = int64_t;

inline constexpr TimeMs kMillisPerSecond = 1000;
inline constexpr TimeMs kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr TimeMs kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr TimeMs kMillisPerDay = 24 * kMillisPerHour;

/// Broken-down civil (proleptic Gregorian, UTC) time.
struct CivilTime {
  int year = 1970;
  int month = 1;   // 1..12
  int day = 1;     // 1..31
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59
  int millisecond = 0;  // 0..999
};

/// Days since the epoch for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of `DaysFromCivil`.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Civil time -> epoch milliseconds.
TimeMs TimeFromCivil(const CivilTime& civil);

/// Epoch milliseconds -> civil time.
CivilTime CivilFromTime(TimeMs t);

/// Day of week, 0 = Monday .. 6 = Sunday.
int DayOfWeek(TimeMs t);

/// True for Saturday/Sunday.
bool IsWeekend(TimeMs t);

/// Hour of day in [0, 24).
int HourOfDay(TimeMs t);

/// Start of the UTC day containing `t`.
TimeMs StartOfDay(TimeMs t);

/// Formats "YYYY-MM-DD HH:MM:SS.mmm".
std::string FormatTime(TimeMs t);

/// Formats just the date part, "YYYY-MM-DD".
std::string FormatDate(TimeMs t);

/// Parses the output of `FormatTime`. Also accepts a bare date
/// ("YYYY-MM-DD") and a timestamp without milliseconds.
Result<TimeMs> ParseTime(std::string_view text);

}  // namespace logmine

#endif  // LOGMINE_UTIL_TIME_UTIL_H_
