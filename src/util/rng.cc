#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace logmine {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the label bytes, used to key forked streams.
uint64_t HashLabel(std::string_view label) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

Rng Rng::Fork(std::string_view label) const {
  // Mix the current state words with the label hash; does not advance *this.
  uint64_t sm = s_[0] ^ Rotl(s_[1], 17) ^ Rotl(s_[2], 31) ^ s_[3];
  sm ^= HashLabel(label);
  return Rng(SplitMix64(&sm));
}

Rng Rng::Fork(uint64_t key) const {
  uint64_t sm = s_[0] ^ Rotl(s_[1], 17) ^ Rotl(s_[2], 31) ^ s_[3];
  // Avalanche the key before mixing so that dense keys (0, 1, 2, ...)
  // land in unrelated streams; the extra constant keeps integer fork 0
  // distinct from the label-keyed forks.
  uint64_t avalanche = key + 0x6a09e667f3bcc909ULL;
  sm ^= SplitMix64(&avalanche);
  return Rng(SplitMix64(&sm));
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

int64_t Rng::Poisson(double lambda) {
  assert(lambda >= 0);
  if (lambda == 0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // workload intensities used in the simulator.
    const double draw = Normal(lambda, std::sqrt(lambda));
    return draw < 0.5 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  int64_t k = 0;
  double prod = Uniform();
  while (prod > limit) {
    ++k;
    prod *= Uniform();
  }
  return k;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double draw = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace logmine
