#ifndef LOGMINE_UTIL_TABLE_PRINTER_H_
#define LOGMINE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace logmine {

/// Renders aligned ASCII tables for the benchmark harness output, e.g.:
///
///   day [dec 05]  | 06   | 07   | ...
///   #logs [mio]   | 10.3 | 9.4  | ...
///
/// Cells are strings; numeric formatting is the caller's concern
/// (see FormatDouble).
class TablePrinter {
 public:
  /// Creates a table with the given column headers (may be empty for a
  /// headerless table).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row. Rows shorter than the header are padded with
  /// empty cells; longer rows widen the table.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Writes `ToString()` to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a one-line horizontal "area chart" used to mimic the paper's
/// stacked TP/FP bar figures in terminal output:
///   `######______` with `filled` of `total` cells shown as '#'.
std::string AsciiBar(int filled, int total, int width);

}  // namespace logmine

#endif  // LOGMINE_UTIL_TABLE_PRINTER_H_
