#include "util/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.h"

namespace logmine {
namespace {

constexpr uint32_t kHeaderMagic = 0x4E534D4C;  // "LMSN" little-endian
constexpr uint32_t kFooterMagic = 0x534E4150;  // "PANS" little-endian

// Slice-by-16 CRC-32: sixteen derived tables let the hot loop fold
// sixteen input bytes per iteration instead of one. Same polynomial,
// identical output to the classic byte-at-a-time form — only the speed
// changes (the container CRC is paid on every snapshot, checkpoint and
// columnar-corpus read, so it sits on the ingest hot path).
std::array<std::array<uint32_t, 256>, 16> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 16> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int t = 1; t < 16; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<std::array<uint32_t, 256>, 16> tables =
      MakeCrcTables();
  uint32_t c = 0xFFFFFFFFu;
  const char* p = bytes.data();
  size_t n = bytes.size();
  while (std::endian::native == std::endian::little && n >= 16) {
    uint64_t lo, hi;
    std::memcpy(&lo, p, 8);
    std::memcpy(&hi, p + 8, 8);
    lo ^= c;  // little-endian: the CRC folds into the low four bytes
    c = tables[15][lo & 0xFF] ^ tables[14][(lo >> 8) & 0xFF] ^
        tables[13][(lo >> 16) & 0xFF] ^ tables[12][(lo >> 24) & 0xFF] ^
        tables[11][(lo >> 32) & 0xFF] ^ tables[10][(lo >> 40) & 0xFF] ^
        tables[9][(lo >> 48) & 0xFF] ^ tables[8][(lo >> 56) & 0xFF] ^
        tables[7][hi & 0xFF] ^ tables[6][(hi >> 8) & 0xFF] ^
        tables[5][(hi >> 16) & 0xFF] ^ tables[4][(hi >> 24) & 0xFF] ^
        tables[3][(hi >> 32) & 0xFF] ^ tables[2][(hi >> 40) & 0xFF] ^
        tables[1][(hi >> 48) & 0xFF] ^ tables[0][(hi >> 56) & 0xFF];
    p += 16;
    n -= 16;
  }
  for (; n > 0; ++p, --n) {
    c = tables[0][(c ^ static_cast<unsigned char>(*p)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

SnapshotWriter::SnapshotWriter(uint32_t version) {
  AppendU32(&out_, kHeaderMagic);
  AppendU32(&out_, version);
}

void SnapshotWriter::BeginSection(std::string_view name) {
  assert(!in_section_ && "BeginSection inside an open section");
  AppendU32(&out_, static_cast<uint32_t>(name.size()));
  out_.append(name);
  payload_len_at_ = out_.size();
  AppendU64(&out_, 0);  // patched by EndSection
  in_section_ = true;
}

void SnapshotWriter::EndSection() {
  assert(in_section_ && "EndSection without BeginSection");
  const uint64_t payload_len =
      static_cast<uint64_t>(out_.size() - payload_len_at_ - 8);
  std::memcpy(out_.data() + payload_len_at_, &payload_len, 8);
  in_section_ = false;
}

void SnapshotWriter::PutU32(uint32_t v) {
  assert(in_section_);
  AppendU32(&out_, v);
}

void SnapshotWriter::PutU64(uint64_t v) {
  assert(in_section_);
  AppendU64(&out_, v);
}

void SnapshotWriter::PutI64(int64_t v) {
  PutU64(static_cast<uint64_t>(v));
}

void SnapshotWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits);
}

void SnapshotWriter::PutBool(bool v) { PutU32(v ? 1 : 0); }

void SnapshotWriter::PutString(std::string_view s) {
  assert(in_section_);
  AppendU64(&out_, s.size());
  out_.append(s);
}

std::string SnapshotWriter::Finish() && {
  assert(!in_section_ && "Finish with an open section");
  AppendU32(&out_, kFooterMagic);
  AppendU32(&out_, Crc32(out_));
  return std::move(out_);
}

Result<std::string_view> SectionCursor::Take(size_t n) {
  if (payload_.size() - pos_ < n) {
    return Status::ParseError("snapshot section truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  std::string_view view = payload_.substr(pos_, n);
  pos_ += n;
  return view;
}

Result<uint32_t> SectionCursor::ReadU32() {
  LOGMINE_ASSIGN_OR_RETURN(std::string_view bytes, Take(4));
  return LoadU32(bytes.data());
}

Result<uint64_t> SectionCursor::ReadU64() {
  LOGMINE_ASSIGN_OR_RETURN(std::string_view bytes, Take(8));
  return LoadU64(bytes.data());
}

Result<int64_t> SectionCursor::ReadI64() {
  LOGMINE_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> SectionCursor::ReadDouble() {
  LOGMINE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<bool> SectionCursor::ReadBool() {
  LOGMINE_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  if (v > 1) {
    return Status::ParseError("snapshot bool out of range: " +
                              std::to_string(v));
  }
  return v == 1;
}

Result<std::string> SectionCursor::ReadString() {
  LOGMINE_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > remaining()) {
    return Status::ParseError("snapshot string truncated: length " +
                              std::to_string(len) + " exceeds " +
                              std::to_string(remaining()) +
                              " remaining bytes");
  }
  LOGMINE_ASSIGN_OR_RETURN(std::string_view bytes,
                           Take(static_cast<size_t>(len)));
  return std::string(bytes);
}

Status SectionCursor::ExpectEnd() const {
  if (pos_ != payload_.size()) {
    return Status::ParseError("snapshot section has " +
                              std::to_string(remaining()) +
                              " undecoded trailing bytes");
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Parse(std::string bytes,
                                             uint32_t expected_version) {
  // Header (8) + footer (8) is the smallest valid snapshot.
  if (bytes.size() < 16) {
    return Status::ParseError("snapshot too short: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  if (LoadU32(bytes.data()) != kHeaderMagic) {
    return Status::ParseError("snapshot header magic mismatch");
  }
  const uint32_t version = LoadU32(bytes.data() + 4);
  if (version != expected_version) {
    return Status::FailedPrecondition(
        "snapshot version " + std::to_string(version) + ", expected " +
        std::to_string(expected_version));
  }
  const size_t footer_at = bytes.size() - 8;
  if (LoadU32(bytes.data() + footer_at) != kFooterMagic) {
    return Status::ParseError("snapshot footer magic mismatch (truncated?)");
  }
  const uint32_t stored_crc = LoadU32(bytes.data() + footer_at + 4);
  const uint32_t actual_crc =
      Crc32(std::string_view(bytes).substr(0, footer_at + 4));
  if (stored_crc != actual_crc) {
    return Status::ParseError("snapshot CRC mismatch (corrupt)");
  }

  SnapshotReader reader;
  reader.bytes_ = std::move(bytes);
  reader.version_ = version;
  size_t pos = 8;
  const std::string_view view = reader.bytes_;
  while (pos < footer_at) {
    if (footer_at - pos < 4) {
      return Status::ParseError("snapshot section header truncated");
    }
    const uint32_t name_len = LoadU32(view.data() + pos);
    pos += 4;
    if (footer_at - pos < name_len + 8) {
      return Status::ParseError("snapshot section truncated");
    }
    std::string name(view.substr(pos, name_len));
    pos += name_len;
    const uint64_t payload_len = LoadU64(view.data() + pos);
    pos += 8;
    if (payload_len > footer_at - pos) {
      return Status::ParseError("snapshot section payload overruns file");
    }
    reader.sections_.emplace_back(
        std::move(name),
        std::make_pair(pos, static_cast<size_t>(payload_len)));
    pos += static_cast<size_t>(payload_len);
  }
  return reader;
}

bool SnapshotReader::HasSection(std::string_view name) const {
  for (const auto& [section_name, span] : sections_) {
    if (section_name == name) return true;
  }
  return false;
}

Result<SectionCursor> SnapshotReader::Section(std::string_view name) const {
  for (const auto& [section_name, span] : sections_) {
    if (section_name == name) {
      return SectionCursor(
          std::string_view(bytes_).substr(span.first, span.second));
    }
  }
  return Status::NotFound("snapshot has no section '" + std::string(name) +
                          "'");
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open for writing: " + tmp_path);
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp_path.c_str());
      return Status::Internal("write failed: " + tmp_path);
    }
    written += static_cast<size_t>(n);
  }
  // Data must be durable *before* the rename publishes the name: a
  // rename that survives a crash while the bytes do not would present a
  // torn file under the final path.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp_path.c_str());
    return Status::Internal("fsync failed: " + tmp_path);
  }
  if (::close(fd) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("close failed: " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename to " + path + " failed: " + ec.message());
  }
  // The rename is a directory mutation; without fsyncing the directory a
  // crash can forget it, so the caller who saw OK would find the old
  // file (or nothing) after reboot. Best-effort: a filesystem that
  // rejects directory fsync (some network mounts) does not fail the
  // write.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(),
                            O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Status WriteSnapshotFile(const std::string& path, std::string_view bytes) {
  LOGMINE_SPAN_GLOBAL("checkpoint/write", obs::Metric::kCheckpointWriteNs);
  if (Status s = WriteFileAtomic(path, bytes); !s.ok()) return s;
  obs::Count(obs::Metric::kCheckpointSnapshotsWritten);
  obs::Count(obs::Metric::kCheckpointBytesWritten,
             static_cast<int64_t>(bytes.size()));
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed: " + path);
  }
  return std::move(buffer).str();
}

}  // namespace logmine
