#ifndef LOGMINE_UTIL_FLAT_COUNTER_H_
#define LOGMINE_UTIL_FLAT_COUNTER_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace logmine {

/// Open-addressing uint64 -> int64 counter for the miners' hot counting
/// loops (L2 bigram types, L3 citation pairs). Replaces the
/// node-per-key `std::map<std::pair<...>, int64_t>` accumulators: one
/// flat array, linear probing, power-of-two capacity, no allocation per
/// key. Each worker shard owns one counter; shards merge with
/// `MergeFrom` in shard order and iterate deterministically via
/// `SortedEntries` (counts are additive, so any shard count yields the
/// same totals).
///
/// The key UINT64_MAX is reserved as the empty-slot sentinel; packed
/// (id_a << 32 | id_b) keys from dense dictionary ids never reach it.
class FlatCounter {
 public:
  static constexpr uint64_t kEmpty = UINT64_MAX;

  explicit FlatCounter(size_t expected_keys = 16) {
    size_t capacity = 16;
    while (capacity < expected_keys * 2) capacity <<= 1;
    keys_.assign(capacity, kEmpty);
    values_.assign(capacity, 0);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Add(uint64_t key, int64_t delta) {
    assert(key != kEmpty);
    size_t slot = Probe(key);
    if (keys_[slot] == kEmpty) {
      keys_[slot] = key;
      ++size_;
      if (size_ * 10 >= keys_.size() * 7) {
        Grow();
        slot = Probe(key);
      }
    }
    values_[slot] += delta;
  }

  /// 0 for absent keys.
  int64_t Get(uint64_t key) const {
    assert(key != kEmpty);
    const size_t slot = Probe(key);
    return keys_[slot] == kEmpty ? 0 : values_[slot];
  }

  /// Adds every entry of `other` into this counter.
  void MergeFrom(const FlatCounter& other) {
    for (size_t i = 0; i < other.keys_.size(); ++i) {
      if (other.keys_[i] != kEmpty) Add(other.keys_[i], other.values_[i]);
    }
  }

  /// All (key, count) entries in ascending key order — the
  /// deterministic iteration order, matching what a `std::map` keyed by
  /// (hi, lo) id pairs would produce.
  std::vector<std::pair<uint64_t, int64_t>> SortedEntries() const {
    std::vector<std::pair<uint64_t, int64_t>> entries;
    entries.reserve(size_);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) entries.emplace_back(keys_[i], values_[i]);
    }
    std::sort(entries.begin(), entries.end());
    return entries;
  }

 private:
  // SplitMix64 finalizer — full-avalanche spread of packed id pairs.
  static size_t Hash(uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  // First slot holding `key` or the empty slot where it would go.
  size_t Probe(uint64_t key) const {
    const size_t mask = keys_.size() - 1;
    size_t slot = Hash(key) & mask;
    while (keys_[slot] != kEmpty && keys_[slot] != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    values_.assign(old_keys.size() * 2, 0);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      const size_t slot = Probe(old_keys[i]);
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> values_;
  size_t size_ = 0;
};

}  // namespace logmine

#endif  // LOGMINE_UTIL_FLAT_COUNTER_H_
