#ifndef LOGMINE_UTIL_STRING_UTIL_H_
#define LOGMINE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace logmine {

/// Splits `input` at every occurrence of `sep`; empty fields are kept.
/// Split("a||b", '|') -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (the service-directory vocabulary is ASCII).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Glob-style match supporting '*' (any run, including empty) and
/// '?' (any single character). Case-sensitive.
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// Splits `text` into maximal runs of [A-Za-z0-9_] — the tokenization used
/// when matching service-directory citations in free text.
std::vector<std::string_view> TokenizeIdentifiers(std::string_view text);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Replaces every occurrence of `from` (non-empty) in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

}  // namespace logmine

#endif  // LOGMINE_UTIL_STRING_UTIL_H_
