#ifndef LOGMINE_UTIL_STATUS_H_
#define LOGMINE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace logmine {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Error-return type used across all public APIs instead of exceptions,
/// following the Arrow/RocksDB idiom. A default-constructed Status is OK.
///
/// Example:
///   Status s = store.Append(record);
///   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status from an expression to the caller.
#define LOGMINE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::logmine::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace logmine

#endif  // LOGMINE_UTIL_STATUS_H_
