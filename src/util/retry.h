#ifndef LOGMINE_UTIL_RETRY_H_
#define LOGMINE_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "util/status.h"

namespace logmine {

/// Exponential-backoff retry parameters for transient failures
/// (checkpoint I/O being the first consumer). Delays are
///   min(max_backoff_ms, initial_backoff_ms * backoff_multiplier^k)
/// scaled by a jitter factor drawn uniformly from
/// [1 - jitter, 1 + jitter) — the jitter comes from a seeded `Rng`
/// forked on the operation name, so a run's retry timing is exactly
/// reproducible and independent streams never perturb each other.
struct RetryPolicy {
  int max_attempts = 3;            ///< total tries, including the first
  int64_t initial_backoff_ms = 5;  ///< delay before the second attempt
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 500;
  double jitter = 0.5;  ///< in [0, 1); 0 = deterministic delays
  uint64_t seed = 0x5EED5EEDULL;
  /// What counts as retryable. Unset (the default) keeps the
  /// `IsRetryable` classification — kInternal only, which is what
  /// snapshot/checkpoint I/O wants. Callers with a wider transient
  /// class (the shard supervisor treats a tripped per-shard deadline
  /// and a corrupt partial snapshot as worth re-mining) install their
  /// own predicate here without loosening anyone else's behavior.
  std::function<bool(StatusCode)> retryable;
};

/// What one RetryWithBackoff call did, for reporting and tests.
struct RetryStats {
  int attempts = 0;
  int64_t total_backoff_ms = 0;
};

/// Whether a failure is worth retrying. Only Internal qualifies: it is
/// the code the I/O layer uses for OS-level failures (open/write/rename),
/// the transient class. Everything else — bad arguments, parse errors,
/// precondition violations, cancellation — is deterministic and would
/// fail identically on every attempt.
bool IsRetryable(StatusCode code);

/// Sleep replacement hook; tests inject a recorder instead of waiting.
using SleepFn = std::function<void(int64_t ms)>;

/// Runs `op` up to `policy.max_attempts` times, sleeping between
/// attempts per the policy, until it returns OK or a non-retryable
/// status (per `policy.retryable` when set, `IsRetryable` otherwise).
/// Returns the last status; fills `stats` (optional) with the
/// attempt count and the total backoff requested. `sleep` defaults to a
/// real std::this_thread::sleep_for.
Status RetryWithBackoff(const RetryPolicy& policy, std::string_view op_name,
                        const std::function<Status()>& op,
                        RetryStats* stats = nullptr,
                        const SleepFn& sleep = SleepFn());

}  // namespace logmine

#endif  // LOGMINE_UTIL_RETRY_H_
