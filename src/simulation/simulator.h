#ifndef LOGMINE_SIMULATION_SIMULATOR_H_
#define LOGMINE_SIMULATION_SIMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "log/store.h"
#include "simulation/clock_skew.h"
#include "simulation/directory.h"
#include "simulation/topology.h"
#include "simulation/workload.h"
#include "util/rng.h"

namespace logmine::sim {

/// An injected outage: the application is down during [begin, end) —
/// it emits nothing, and calls to it fail with timeout errors at the
/// caller. The substrate for evaluating the §1.1 applications (root
/// cause analysis, fault detection) end to end.
struct FailureWindow {
  int app = -1;  ///< index into Topology::apps
  TimeMs begin = 0;
  TimeMs end = 0;
};

/// Volume and behaviour knobs of a simulation run. Defaults target
/// roughly 1/30 of HUG's production volume (~330 k logs per weekday)
/// while keeping per-application hourly densities in the regime where
/// the paper's statistics behave the same way.
struct SimulationConfig {
  /// First simulated day, midnight UTC. Defaults to 2005-12-06, the first
  /// day of the paper's test period.
  TimeMs start = 0;  // 0 => use kDefaultStart
  int num_days = 7;
  /// Global volume multiplier applied to sessions, anonymous executions
  /// and background chatter.
  double scale = 1.0;
  uint64_t seed = 20051206;

  WorkloadConfig workload;
  DiurnalProfile profile = DiurnalProfile::Hospital();

  /// Context-free use-case executions per weekday (users the session
  /// builder cannot identify). The bulk of interaction traffic.
  double anon_executions_per_weekday = 14000.0;
  /// Nightly batch executions per day (daemon/service-rooted use cases).
  double batch_executions_per_day = 500.0;
  /// Expected occurrences, per day and (app, entry) coincidence pair, of
  /// free text containing a service id by coincidence.
  double coincidence_rate_per_day = 0.5;

  /// Probability that a log emitted while handling an *identified*
  /// session's transaction carries the user/workstation context.
  double client_context_prob = 0.95;   ///< for the client application
  double service_context_prob = 0.25;  ///< for downstream services

  /// Latency model (lognormal medians in ms and log-space sigmas).
  double network_median_ms = 80.0;
  double network_sigma = 0.7;
  double processing_median_ms = 280.0;
  double processing_sigma = 1.0;
  double async_delay_median_ms = 1200.0;
  double async_sigma = 0.8;

  /// Caller-side timeout when invoking a failed component.
  TimeMs failure_timeout_ms = 2500;
  /// Injected outages.
  std::vector<FailureWindow> failures;
};

/// The paper's test period starts 2005-12-06 (a Tuesday).
TimeMs DefaultSimulationStart();

/// Counters reported by a run.
struct SimulationSummary {
  std::vector<int64_t> logs_per_day;
  int64_t total_logs = 0;
  int64_t context_logs = 0;  ///< logs carrying user context
  int64_t num_identified_sessions = 0;
  int64_t num_anonymous_executions = 0;
  int64_t num_batch_executions = 0;
};

/// Generates a synthetic log corpus from a topology: identified user
/// sessions, anonymous interactive load, nightly batch jobs, background
/// chatter, clock skew, and every logging defect the topology carries.
/// Deterministic for a given (topology, directory, config).
class Simulator {
 public:
  Simulator(const Topology& topology, const ServiceDirectory& directory,
            const SimulationConfig& config);

  /// Runs the simulation, appending into `out` (which may be pre-loaded)
  /// and building its index. `summary` may be null.
  Status Run(LogStore* out, SimulationSummary* summary);

 private:
  struct ExecContext {
    std::string user;         ///< empty => anonymous
    std::string workstation;  ///< host used for client-app logs
    int day_index = 0;
    bool identified = false;
  };

  // Appends one record with clock skew applied; `context_prob` is the
  // chance it carries the session's user context.
  void EmitLog(int app, TimeMs true_time, const ExecContext& ctx,
               double context_prob, Severity severity, std::string message);

  // Executes one call step (and its children); returns the completion
  // time of the synchronous part.
  TimeMs ExecuteCall(const CallStep& step, TimeMs t, const ExecContext& ctx);

  // Executes a whole use case starting at `t`; returns its end time.
  TimeMs ExecuteUseCase(const UseCase& use_case, TimeMs t,
                        const ExecContext& ctx);

  void RunIdentifiedSessions(TimeMs day_start, int day_index);
  void RunAnonymousLoad(TimeMs day_start, int day_index);
  void RunBatchJobs(TimeMs day_start, int day_index);
  void RunBackgroundChatter(TimeMs day_start, int day_index);
  void RunCoincidences(TimeMs day_start, int day_index);

  const std::string& HostOf(int app, const ExecContext& ctx) const;

  // True when `app` is inside an injected failure window at `t`.
  bool IsFailed(int app, TimeMs t) const;

  const Topology& topology_;
  const ServiceDirectory& directory_;
  SimulationConfig config_;
  ClockSkewModel skew_;
  Rng rng_;

  // Precomputed per edge: the id cited in logs, the URL, a function name.
  struct EdgeText {
    std::string cited_id;
    std::string url;
    std::string fct;
  };
  std::vector<EdgeText> edge_text_;
  std::vector<int> client_apps_;
  std::map<int, std::vector<int>> use_cases_by_root_;
  std::vector<double> use_case_weights_;  // aligned with topology.use_cases

  LogStore* out_ = nullptr;
  SimulationSummary* summary_ = nullptr;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_SIMULATOR_H_
