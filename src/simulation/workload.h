#ifndef LOGMINE_SIMULATION_WORKLOAD_H_
#define LOGMINE_SIMULATION_WORKLOAD_H_

#include <array>
#include <vector>

#include "util/rng.h"
#include "util/time_util.h"

namespace logmine::sim {

/// Hour-of-day activity profile of the hospital, separately for weekdays
/// and weekends. "Even though hospitals are working round the clock,
/// there is still much more activity at usual office hours."
struct DiurnalProfile {
  std::array<double, 24> weekday{};
  std::array<double, 24> weekend{};

  /// Relative intensity (mean 1.0 over weekday hours) at time `t`.
  double IntensityAt(TimeMs t) const;

  /// The default hospital shape: night floor ~0.25, morning ramp, peaks
  /// 9-11 and 14-16, evening decay; weekend scaled to ~1/3 with a flatter
  /// profile.
  static DiurnalProfile Hospital();
};

/// One planned user session: a user on a workstation driving one client
/// application for a while.
struct SessionPlan {
  TimeMs start = 0;
  TimeMs end = 0;
  int user = 0;
  int workstation = 0;
  int client_app = 0;  ///< index into Topology::apps (a kClient app)
};

/// Parameters of the user-level workload.
struct WorkloadConfig {
  int num_users = 220;
  int num_workstations = 140;
  /// Expected identified sessions on a weekday (weekends scale by
  /// `weekend_factor` through the diurnal profile).
  double sessions_per_weekday = 550.0;
  double mean_session_minutes = 7.0;
  /// Median / log-sigma of the lognormal think time between user actions.
  double think_median_seconds = 30.0;
  double think_log_sigma = 0.9;
};

/// Lognormal sample with the given median and log-space sigma.
double LogNormal(double median, double log_sigma, Rng* rng);

/// Intensity below which only the round-the-clock care applications are
/// in use ("night regime").
inline constexpr double kNightRegimeIntensity = 0.35;

/// Plans the identified user sessions of one day: session start times
/// follow the diurnal profile, users/workstations are drawn with reuse
/// (several users share machines and users roam), and each session picks
/// a client application.
///
/// `day_clients` lists the app indices eligible during the day;
/// `night_clients` the (sub)set active when the hourly intensity falls
/// below `kNightRegimeIntensity`. When `night_clients` is empty,
/// `day_clients` is used around the clock.
std::vector<SessionPlan> PlanDaySessions(TimeMs day_start,
                                         const DiurnalProfile& profile,
                                         const WorkloadConfig& config,
                                         const std::vector<int>& day_clients,
                                         const std::vector<int>& night_clients,
                                         Rng* rng);

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_WORKLOAD_H_
