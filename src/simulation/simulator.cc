#include "simulation/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "simulation/message_render.h"

namespace logmine::sim {
namespace {

constexpr double kCompletionLogProb = 0.25;
constexpr double kServerSideLogProb = 0.8;

std::string UserName(int user) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%04d", user);
  return buf;
}

std::string WorkstationName(int ws) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "ws-%03d", ws);
  return buf;
}

}  // namespace

TimeMs DefaultSimulationStart() {
  return TimeFromCivil({.year = 2005, .month = 12, .day = 6});
}

Simulator::Simulator(const Topology& topology,
                     const ServiceDirectory& directory,
                     const SimulationConfig& config)
    : topology_(topology),
      directory_(directory),
      config_(config),
      skew_(config.seed ^ 0xc1c1c1c1ULL),
      rng_(config.seed) {
  if (config_.start == 0) config_.start = DefaultSimulationStart();

  edge_text_.resize(topology_.edges.size());
  for (size_t e = 0; e < topology_.edges.size(); ++e) {
    const InvocationEdge& edge = topology_.edges[e];
    EdgeText& text = edge_text_[e];
    if (edge.cited_entry >= 0) {
      const ServiceEntry& entry =
          directory_.entry(static_cast<size_t>(edge.cited_entry));
      text.cited_id = edge.miscited_id.empty() ? entry.id : edge.miscited_id;
      text.url = entry.root_url;
      if (!edge.miscited_id.empty()) {
        // A stale id is cited consistently in URLs too.
        text.url = entry.server_host + "/" + edge.miscited_id;
      }
      text.fct = FunctionNameFor(text.cited_id, static_cast<int>(e) % 3);
    } else {
      const Application& callee =
          topology_.apps[static_cast<size_t>(edge.callee)];
      text.cited_id = "";
      text.url = callee.host + "/internal";
      text.fct = FunctionNameFor(callee.name, static_cast<int>(e) % 3);
    }
  }

  for (size_t a = 0; a < topology_.apps.size(); ++a) {
    if (topology_.apps[a].tier == Tier::kClient) {
      client_apps_.push_back(static_cast<int>(a));
    }
  }
  use_case_weights_.resize(topology_.use_cases.size(), 1.0);
  for (size_t u = 0; u < topology_.use_cases.size(); ++u) {
    use_case_weights_[u] = topology_.use_cases[u].weight;
    use_cases_by_root_[topology_.use_cases[u].root_app].push_back(
        static_cast<int>(u));
  }
}

bool Simulator::IsFailed(int app, TimeMs t) const {
  for (const FailureWindow& window : config_.failures) {
    if (window.app == app && t >= window.begin && t < window.end) {
      return true;
    }
  }
  return false;
}

const std::string& Simulator::HostOf(int app, const ExecContext& ctx) const {
  const Application& a = topology_.apps[static_cast<size_t>(app)];
  return a.tier == Tier::kClient ? ctx.workstation : a.host;
}

void Simulator::EmitLog(int app, TimeMs true_time, const ExecContext& ctx,
                        double context_prob, Severity severity,
                        std::string message) {
  const Application& a = topology_.apps[static_cast<size_t>(app)];
  const std::string& host = HostOf(app, ctx);
  const bool nt = a.tier == Tier::kClient ? true : a.nt_clock;

  LogRecord record;
  record.client_ts =
      true_time + skew_.SkewFor(host, nt, ctx.day_index);
  record.server_ts = true_time + skew_.BufferDelayFor(host, true_time);
  record.severity = severity;
  record.source = a.name;
  record.host = host;
  if (ctx.identified && !ctx.user.empty() &&
      rng_.Bernoulli(context_prob)) {
    record.user = ctx.user;
    if (summary_ != nullptr) ++summary_->context_logs;
  }
  record.message = std::move(message);
  Status s = out_->Append(record);
  assert(s.ok());
  (void)s;
  if (summary_ != nullptr) ++summary_->total_logs;
}

TimeMs Simulator::ExecuteCall(const CallStep& step, TimeMs t,
                              const ExecContext& ctx) {
  const InvocationEdge& edge = topology_.edges[static_cast<size_t>(step.edge)];
  if (ctx.day_index < edge.active_from_day ||
      ctx.day_index > edge.active_until_day) {
    return t;  // the interaction does not exist (yet / anymore)
  }
  if (IsFailed(edge.caller, t)) return t;  // a failed app initiates nothing
  const EdgeText& text = edge_text_[static_cast<size_t>(step.edge)];
  const Application& caller =
      topology_.apps[static_cast<size_t>(edge.caller)];
  const Application& callee =
      topology_.apps[static_cast<size_t>(edge.callee)];
  const double caller_context = caller.tier == Tier::kClient
                                    ? config_.client_context_prob
                                    : config_.service_context_prob;

  // Caller logs the invocation (unless this interaction is one of the
  // unlogged defects, or the developer's logging is flaky).
  if (edge.logged_by_caller && !text.cited_id.empty() &&
      rng_.Bernoulli(caller.invocation_log_prob)) {
    EmitLog(edge.caller, t, ctx, caller_context, Severity::kInfo,
            RenderInvocationMessage(caller.invocation_style, text.fct,
                                    text.cited_id, text.url, &rng_));
  }

  const TimeMs network = static_cast<TimeMs>(
      LogNormal(config_.network_median_ms, config_.network_sigma, &rng_));
  const TimeMs arrival = t + std::max<TimeMs>(network, 1);

  // Injected outage: the callee is down — it logs nothing, the caller
  // times out with an error citing the service it tried to reach.
  if (IsFailed(edge.callee, arrival)) {
    const TimeMs timeout =
        t + config_.failure_timeout_ms + rng_.UniformInt(0, 500);
    EmitLog(edge.caller, timeout, ctx, caller_context, Severity::kError,
            "ERROR timeout waiting for " +
                (text.cited_id.empty() ? callee.name : text.cited_id) +
                " (fct " + text.fct + "), giving up after " +
                std::to_string(timeout - t) + " ms");
    return timeout;
  }

  // Provider-side receive log (source of inverted dependencies).
  if (callee.logs_server_side && !callee.provided_entries.empty() &&
      rng_.Bernoulli(kServerSideLogProb)) {
    const std::string& own_id =
        directory_.entry(static_cast<size_t>(callee.provided_entries[0])).id;
    EmitLog(edge.callee, arrival, ctx, config_.service_context_prob,
            Severity::kInfo,
            RenderServerSideMessage(callee.server_side_style, text.fct,
                                    own_id, HostOf(edge.caller, ctx), &rng_));
  }

  // Callee processing logs.
  const TimeMs processing = static_cast<TimeMs>(LogNormal(
      config_.processing_median_ms, config_.processing_sigma, &rng_));
  const int num_proc = 1 + static_cast<int>(rng_.UniformInt(0, 1));
  for (int i = 0; i < num_proc; ++i) {
    const TimeMs offset =
        processing * (i + 1) / (num_proc + 1);
    EmitLog(edge.callee, arrival + offset, ctx,
            config_.service_context_prob, Severity::kInfo,
            RenderProcessingMessage(callee.name, &rng_));
  }

  // Nested calls made by the callee while handling the request.
  TimeMs sync_end = arrival + processing;
  for (const CallStep& child : step.children) {
    const InvocationEdge& child_edge =
        topology_.edges[static_cast<size_t>(child.edge)];
    if (child_edge.asynchronous) {
      const TimeMs delay = static_cast<TimeMs>(LogNormal(
          config_.async_delay_median_ms, config_.async_sigma, &rng_));
      ExecuteCall(child, arrival + processing / 2 + delay, ctx);
    } else {
      sync_end = ExecuteCall(child, sync_end, ctx);
    }
  }

  // Failure path: the caller logs an exception whose stack trace cites a
  // deeper service returned through the intermediary.
  if (edge.exception_deep_entry >= 0 && rng_.Bernoulli(edge.failure_prob)) {
    const std::string& deep_id =
        directory_.entry(static_cast<size_t>(edge.exception_deep_entry)).id;
    EmitLog(edge.caller, sync_end + 5, ctx, caller_context, Severity::kError,
            RenderExceptionMessage(text.cited_id, deep_id, text.fct, &rng_));
  } else if (rng_.Bernoulli(kCompletionLogProb)) {
    EmitLog(edge.caller, sync_end + 2, ctx, caller_context, Severity::kDebug,
            "call completed rc=0 (" + std::to_string(sync_end - t) + " ms)");
  }
  return sync_end + 2;
}

TimeMs Simulator::ExecuteUseCase(const UseCase& use_case, TimeMs t,
                                 const ExecContext& ctx) {
  const Application& root =
      topology_.apps[static_cast<size_t>(use_case.root_app)];
  if (IsFailed(use_case.root_app, t)) return t;
  if (root.tier == Tier::kClient) {
    EmitLog(use_case.root_app, t, ctx, config_.client_context_prob,
            Severity::kInfo, RenderUserActionMessage(use_case.name, &rng_));
  } else {
    EmitLog(use_case.root_app, t, ctx, 0.0, Severity::kDebug,
            "job started: " + use_case.name);
  }
  TimeMs cursor = t + rng_.UniformInt(10, 120);
  for (const CallStep& step : use_case.steps) {
    cursor = ExecuteCall(step, cursor, ctx);
    cursor += rng_.UniformInt(60, 400);  // UI / job pacing between calls
  }
  return cursor;
}

void Simulator::RunIdentifiedSessions(TimeMs day_start, int day_index) {
  if (client_apps_.empty()) return;
  WorkloadConfig workload = config_.workload;
  workload.sessions_per_weekday *= config_.scale;
  std::vector<int> night_clients;
  for (int c : client_apps_) {
    if (topology_.apps[static_cast<size_t>(c)].night_active) {
      night_clients.push_back(c);
    }
  }
  Rng plan_rng = rng_.Fork("sessions-" + std::to_string(day_index));
  const std::vector<SessionPlan> plans =
      PlanDaySessions(day_start, config_.profile, workload, client_apps_,
                      night_clients, &plan_rng);
  const bool weekend = IsWeekend(day_start);
  for (const SessionPlan& plan : plans) {
    if (weekend &&
        topology_.apps[static_cast<size_t>(plan.client_app)].weekday_only) {
      continue;
    }
    auto it = use_cases_by_root_.find(plan.client_app);
    if (it == use_cases_by_root_.end()) continue;
    if (summary_ != nullptr) ++summary_->num_identified_sessions;
    ExecContext ctx;
    ctx.user = UserName(plan.user);
    ctx.workstation = WorkstationName(plan.workstation);
    ctx.day_index = day_index;
    ctx.identified = true;

    std::vector<double> weights;
    weights.reserve(it->second.size());
    for (int u : it->second) {
      weights.push_back(use_case_weights_[static_cast<size_t>(u)]);
    }
    TimeMs t = plan.start;
    while (t < plan.end) {
      const int pick = it->second[rng_.WeightedIndex(weights)];
      t = ExecuteUseCase(topology_.use_cases[static_cast<size_t>(pick)], t,
                         ctx);
      const double think = LogNormal(
          config_.workload.think_median_seconds * 1000.0,
          config_.workload.think_log_sigma, &rng_);
      t += static_cast<TimeMs>(think);
    }
  }
}

void Simulator::RunAnonymousLoad(TimeMs day_start, int day_index) {
  if (topology_.use_cases.empty()) return;
  // On weekends, use cases rooted at weekday-only clients drop out.
  std::vector<double> weights = use_case_weights_;
  if (IsWeekend(day_start)) {
    for (size_t u = 0; u < topology_.use_cases.size(); ++u) {
      const int root = topology_.use_cases[u].root_app;
      if (topology_.apps[static_cast<size_t>(root)].weekday_only) {
        weights[u] = 0.0;
      }
    }
  }
  // During night hours only the round-the-clock care clients generate
  // interactive load.
  std::vector<double> night_weights = weights;
  bool have_night_active = false;
  for (size_t u = 0; u < topology_.use_cases.size(); ++u) {
    const auto& root =
        topology_.apps[static_cast<size_t>(topology_.use_cases[u].root_app)];
    if (root.night_active) {
      have_night_active = true;
    } else {
      // A trickle of non-care activity remains at night (emergency
      // admissions, on-call staff).
      night_weights[u] *= 0.15;
    }
  }
  for (int hour = 0; hour < 24; ++hour) {
    const TimeMs hour_start = day_start + hour * kMillisPerHour;
    const double intensity = config_.profile.IntensityAt(hour_start);
    const bool night_regime =
        intensity < kNightRegimeIntensity && have_night_active;
    const double expected = config_.anon_executions_per_weekday / 24.0 *
                            intensity * config_.scale;
    const int64_t count = rng_.Poisson(expected);
    for (int64_t i = 0; i < count; ++i) {
      const size_t pick =
          rng_.WeightedIndex(night_regime ? night_weights : weights);
      ExecContext ctx;
      ctx.workstation = WorkstationName(static_cast<int>(
          rng_.UniformInt(0, config_.workload.num_workstations - 1)));
      ctx.day_index = day_index;
      ctx.identified = false;
      const TimeMs t = hour_start + rng_.UniformInt(0, kMillisPerHour - 1);
      ExecuteUseCase(topology_.use_cases[pick], t, ctx);
      if (summary_ != nullptr) ++summary_->num_anonymous_executions;
    }
  }
}

void Simulator::RunBatchJobs(TimeMs day_start, int day_index) {
  if (topology_.batch_use_cases.empty()) return;
  std::vector<double> weights;
  weights.reserve(topology_.batch_use_cases.size());
  for (const UseCase& uc : topology_.batch_use_cases) {
    weights.push_back(uc.weight);
  }
  // Night-weighted schedule: batch jobs cluster between 01:00 and 05:00.
  std::vector<double> hour_weights(24, 0.25);
  for (int h = 1; h <= 5; ++h) hour_weights[static_cast<size_t>(h)] = 7.0;
  const int64_t count =
      rng_.Poisson(config_.batch_executions_per_day * config_.scale);
  for (int64_t i = 0; i < count; ++i) {
    const int hour = static_cast<int>(rng_.WeightedIndex(hour_weights));
    const TimeMs t =
        day_start + hour * kMillisPerHour + rng_.UniformInt(0, kMillisPerHour - 1);
    ExecContext ctx;
    ctx.workstation = WorkstationName(0);
    ctx.day_index = day_index;
    ctx.identified = false;
    const size_t pick = rng_.WeightedIndex(weights);
    ExecuteUseCase(topology_.batch_use_cases[pick], t, ctx);
    if (summary_ != nullptr) ++summary_->num_batch_executions;
  }
}

void Simulator::RunBackgroundChatter(TimeMs day_start, int day_index) {
  for (size_t a = 0; a < topology_.apps.size(); ++a) {
    const Application& app = topology_.apps[a];
    for (int hour = 0; hour < 24; ++hour) {
      const TimeMs hour_start = day_start + hour * kMillisPerHour;
      const double intensity = config_.profile.IntensityAt(hour_start);
      double modulation;
      switch (app.tier) {
        case Tier::kDaemon:
          modulation = 1.0;  // daemons chatter around the clock
          break;
        case Tier::kClient:
          modulation = intensity;  // workstations are on during the day
          break;
        default:
          // Service/backend chatter mostly tracks the interactive load
          // (connection pools, per-request caches), with a small floor.
          modulation = 0.15 + 0.85 * intensity;
      }
      const double expected =
          app.background_rate_per_hour * modulation * config_.scale;
      const int64_t count = rng_.Poisson(expected);
      for (int64_t i = 0; i < count; ++i) {
        ExecContext ctx;
        ctx.workstation = WorkstationName(static_cast<int>(
            rng_.UniformInt(0, config_.workload.num_workstations - 1)));
        ctx.day_index = day_index;
        ctx.identified = false;
        const TimeMs t = hour_start + rng_.UniformInt(0, kMillisPerHour - 1);
        if (IsFailed(static_cast<int>(a), t)) continue;  // app is down
        EmitLog(static_cast<int>(a), t, ctx, 0.0,
                rng_.Bernoulli(0.15) ? Severity::kDebug : Severity::kInfo,
                RenderBackgroundMessage(app.name, &rng_));
      }
    }
  }
}

void Simulator::RunCoincidences(TimeMs day_start, int day_index) {
  for (size_t a = 0; a < topology_.apps.size(); ++a) {
    const Application& app = topology_.apps[a];
    for (int entry : app.coincidence_entries) {
      const int64_t count =
          rng_.Poisson(config_.coincidence_rate_per_day * config_.scale);
      for (int64_t i = 0; i < count; ++i) {
        ExecContext ctx;
        ctx.workstation = WorkstationName(static_cast<int>(
            rng_.UniformInt(0, config_.workload.num_workstations - 1)));
        ctx.day_index = day_index;
        ctx.identified = false;
        // Coincidences happen while people work: bias toward the day.
        const TimeMs t =
            day_start + rng_.UniformInt(7, 19) * kMillisPerHour +
            rng_.UniformInt(0, kMillisPerHour - 1);
        EmitLog(static_cast<int>(a), t, ctx, 0.0, Severity::kInfo,
                RenderCoincidenceMessage(
                    app.name,
                    directory_.entry(static_cast<size_t>(entry)).id, &rng_));
      }
    }
  }
}

Status Simulator::Run(LogStore* out, SimulationSummary* summary) {
  if (out == nullptr) {
    return Status::InvalidArgument("null output store");
  }
  LOGMINE_RETURN_IF_ERROR(topology_.Validate(directory_));
  if (config_.num_days < 1 || config_.scale <= 0.0) {
    return Status::InvalidArgument("num_days must be >= 1 and scale > 0");
  }
  out_ = out;
  SimulationSummary local_summary;
  summary_ = &local_summary;

  for (int day = 0; day < config_.num_days; ++day) {
    const TimeMs day_start = config_.start + day * kMillisPerDay;
    RunIdentifiedSessions(day_start, day);
    RunAnonymousLoad(day_start, day);
    RunBatchJobs(day_start, day);
    RunBackgroundChatter(day_start, day);
    RunCoincidences(day_start, day);
  }
  out->BuildIndex();

  // Per-day counts from the stored timestamps.
  local_summary.logs_per_day.assign(static_cast<size_t>(config_.num_days), 0);
  for (size_t i = 0; i < out->size(); ++i) {
    const int64_t day = (out->client_ts(i) - config_.start) / kMillisPerDay;
    if (day >= 0 && day < config_.num_days) {
      ++local_summary.logs_per_day[static_cast<size_t>(day)];
    }
  }
  if (summary != nullptr) *summary = local_summary;
  summary_ = nullptr;
  out_ = nullptr;
  return Status::OK();
}

}  // namespace logmine::sim
