#include "simulation/service_faults.h"

#include <algorithm>
#include <string>

namespace logmine::sim {

std::string_view ServiceFaultName(ServiceFault fault) {
  switch (fault) {
    case ServiceFault::kNone:
      return "none";
    case ServiceFault::kStallEpoch:
      return "stall-epoch";
    case ServiceFault::kPoisonBatch:
      return "poison-batch";
    case ServiceFault::kClockRegression:
      return "clock-regression";
    case ServiceFault::kSlowConsumer:
      return "slow-consumer";
    case ServiceFault::kCrashMidPublish:
      return "crash-mid-publish";
  }
  return "unknown";
}

Result<ServiceFault> ServiceFaultFromName(std::string_view name) {
  for (ServiceFault fault :
       {ServiceFault::kNone, ServiceFault::kStallEpoch,
        ServiceFault::kPoisonBatch, ServiceFault::kClockRegression,
        ServiceFault::kSlowConsumer, ServiceFault::kCrashMidPublish}) {
    if (name == ServiceFaultName(fault)) return fault;
  }
  return Status::InvalidArgument("unknown service fault: " +
                                 std::string(name));
}

ServiceFaultPlan RandomServiceFaultPlan(
    Rng* rng, int64_t num_epochs, int64_t num_queries,
    const ServiceFaultPlanOptions& options) {
  ServiceFaultPlan plan;
  if (options.max_faults <= 0) return plan;
  const int num_faults =
      static_cast<int>(rng->UniformInt(1, options.max_faults));
  for (int i = 0; i < num_faults; ++i) {
    ServiceFaultSpec spec;
    spec.slow_ms = options.slow_ms;
    // kNone is excluded: a drawn fault always misbehaves.
    switch (rng->UniformInt(1, 5)) {
      case 1:
        spec.fault = ServiceFault::kStallEpoch;
        spec.times = static_cast<int>(
            rng->UniformInt(1, std::max(1, options.max_stall_steps)));
        break;
      case 2:
        spec.fault = ServiceFault::kPoisonBatch;
        break;
      case 3:
        spec.fault = ServiceFault::kClockRegression;
        break;
      case 4:
        spec.fault = ServiceFault::kSlowConsumer;
        break;
      default:
        spec.fault = ServiceFault::kCrashMidPublish;
        break;
    }
    const int64_t domain = spec.fault == ServiceFault::kSlowConsumer
                               ? num_queries
                               : num_epochs;
    if (domain <= 0) continue;
    spec.index = rng->UniformInt(0, domain - 1);
    // Crashing the very first publish leaves no prior generation to
    // keep serving, which is a different (also valid) scenario; keep it.
    const bool clash =
        std::any_of(plan.faults.begin(), plan.faults.end(),
                    [&](const ServiceFaultSpec& other) {
                      const bool other_query =
                          other.fault == ServiceFault::kSlowConsumer;
                      const bool spec_query =
                          spec.fault == ServiceFault::kSlowConsumer;
                      return other_query == spec_query &&
                             other.index == spec.index;
                    });
    if (!clash) plan.faults.push_back(spec);
  }
  return plan;
}

ServiceFaultInjector::ServiceFaultInjector(ServiceFaultPlan plan)
    : plan_(std::move(plan)) {}

ServiceFault ServiceFaultInjector::OnEpoch(int64_t index, int attempt) const {
  for (const ServiceFaultSpec& spec : plan_.faults) {
    if (spec.fault == ServiceFault::kSlowConsumer) continue;
    if (spec.index != index) continue;
    if (spec.fault == ServiceFault::kStallEpoch && attempt > spec.times) {
      return ServiceFault::kNone;
    }
    return spec.fault;
  }
  return ServiceFault::kNone;
}

ServiceFault ServiceFaultInjector::OnQuery(int64_t index) const {
  const ServiceFaultSpec* spec =
      SpecFor(index, ServiceFault::kSlowConsumer);
  return spec == nullptr ? ServiceFault::kNone : spec->fault;
}

const ServiceFaultSpec* ServiceFaultInjector::SpecFor(
    int64_t index, ServiceFault fault) const {
  for (const ServiceFaultSpec& spec : plan_.faults) {
    if (spec.fault == fault && spec.index == index) return &spec;
  }
  return nullptr;
}

Status ServiceFaultInjector::KilledStatus(int64_t index) {
  return Status::Internal("service killed by fault crash-mid-publish at epoch " +
                          std::to_string(index));
}

}  // namespace logmine::sim
