#include "simulation/crash_injector.h"

#include <algorithm>

namespace logmine::sim {

std::string_view KillPointName(KillPoint point) {
  switch (point) {
    case KillPoint::kNone:
      return "none";
    case KillPoint::kAfterDayMined:
      return "after-day-mined";
    case KillPoint::kMidSnapshotWrite:
      return "mid-snapshot-write";
    case KillPoint::kAfterCheckpoint:
      return "after-checkpoint";
    case KillPoint::kBetweenMiners:
      return "between-miners";
  }
  return "unknown";
}

Result<KillPoint> KillPointFromName(std::string_view name) {
  for (KillPoint point :
       {KillPoint::kNone, KillPoint::kAfterDayMined,
        KillPoint::kMidSnapshotWrite, KillPoint::kAfterCheckpoint,
        KillPoint::kBetweenMiners}) {
    if (KillPointName(point) == name) return point;
  }
  return Status::InvalidArgument("unknown kill point: " + std::string(name));
}

CrashPlan RandomCrashPlan(Rng* rng, int num_days, int num_techniques) {
  CrashPlan plan;
  // kBetweenMiners only exists when a second technique follows the first.
  const bool boundaries = num_techniques > 1;
  const int64_t kinds = boundaries ? 4 : 3;
  switch (rng->UniformInt(0, kinds - 1)) {
    case 0:
      plan.point = KillPoint::kAfterDayMined;
      break;
    case 1:
      plan.point = KillPoint::kMidSnapshotWrite;
      break;
    case 2:
      plan.point = KillPoint::kAfterCheckpoint;
      break;
    default:
      plan.point = KillPoint::kBetweenMiners;
      break;
  }
  if (plan.point == KillPoint::kBetweenMiners) {
    plan.index = static_cast<int>(rng->UniformInt(0, num_techniques - 2));
  } else {
    plan.index =
        static_cast<int>(rng->UniformInt(0, std::max(0, num_days - 1)));
  }
  return plan;
}

bool CrashInjector::ShouldKill(KillPoint point, int index) {
  if (fired_ || plan_.point != point || plan_.index != index) return false;
  fired_ = true;
  return true;
}

Status CrashInjector::KilledStatus(KillPoint point, int index) {
  return Status::Internal("simulated crash at " +
                          std::string(KillPointName(point)) + " #" +
                          std::to_string(index));
}

std::string_view ShardFaultName(ShardFault fault) {
  switch (fault) {
    case ShardFault::kNone:
      return "none";
    case ShardFault::kFailTransient:
      return "fail-transient";
    case ShardFault::kHang:
      return "hang";
    case ShardFault::kCorruptModel:
      return "corrupt-model";
    case ShardFault::kSlow:
      return "slow";
  }
  return "unknown";
}

Result<ShardFault> ShardFaultFromName(std::string_view name) {
  for (ShardFault fault :
       {ShardFault::kNone, ShardFault::kFailTransient, ShardFault::kHang,
        ShardFault::kCorruptModel, ShardFault::kSlow}) {
    if (ShardFaultName(fault) == name) return fault;
  }
  return Status::InvalidArgument("unknown shard fault: " + std::string(name));
}

ShardFaultPlan RandomShardFaultPlan(Rng* rng, int num_days, int num_ranges,
                                    const ShardFaultPlanOptions& options) {
  ShardFaultPlan plan;
  const int cells = num_days * num_ranges;
  if (cells <= 0 || options.max_faulty_shards <= 0) return plan;
  // Draw distinct cells by shuffling the cell index space — keeps the
  // at-most-one-spec-per-shard invariant by construction.
  std::vector<int> order(cells);
  for (int i = 0; i < cells; ++i) order[i] = i;
  rng->Shuffle(&order);
  const int count = static_cast<int>(rng->UniformInt(
      1, std::min(options.max_faulty_shards, cells)));
  for (int i = 0; i < count; ++i) {
    ShardFaultSpec spec;
    spec.day = order[i] / num_ranges;
    spec.range_index = order[i] % num_ranges;
    switch (rng->UniformInt(0, 3)) {
      case 0:
        spec.fault = ShardFault::kFailTransient;
        break;
      case 1:
        spec.fault = ShardFault::kHang;
        break;
      case 2:
        spec.fault = ShardFault::kCorruptModel;
        break;
      default:
        spec.fault = ShardFault::kSlow;
        break;
    }
    if (rng->Uniform(0.0, 1.0) < options.permanent_fraction) {
      spec.times = kShardFaultAlways;
    } else {
      spec.times =
          static_cast<int>(rng->UniformInt(1, std::max(1, options.max_times)));
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

const ShardFaultSpec* ShardFaultInjector::SpecFor(int day,
                                                  int range_index) const {
  for (const ShardFaultSpec& spec : plan_.faults) {
    if (spec.day == day && spec.range_index == range_index) return &spec;
  }
  return nullptr;
}

ShardFault ShardFaultInjector::OnAttempt(int day, int range_index,
                                         int attempt) const {
  const ShardFaultSpec* spec = SpecFor(day, range_index);
  if (spec == nullptr || attempt > spec->times) return ShardFault::kNone;
  return spec->fault;
}

std::vector<std::pair<int, int>> ShardFaultInjector::PermanentlyPoisoned()
    const {
  std::vector<std::pair<int, int>> cells;
  for (const ShardFaultSpec& spec : plan_.faults) {
    if (spec.times != kShardFaultAlways) continue;
    if (spec.fault == ShardFault::kSlow || spec.fault == ShardFault::kNone) {
      continue;
    }
    cells.emplace_back(spec.day, spec.range_index);
  }
  std::sort(cells.begin(), cells.end());
  return cells;
}

}  // namespace logmine::sim
