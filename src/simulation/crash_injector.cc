#include "simulation/crash_injector.h"

#include <algorithm>

namespace logmine::sim {

std::string_view KillPointName(KillPoint point) {
  switch (point) {
    case KillPoint::kNone:
      return "none";
    case KillPoint::kAfterDayMined:
      return "after-day-mined";
    case KillPoint::kMidSnapshotWrite:
      return "mid-snapshot-write";
    case KillPoint::kAfterCheckpoint:
      return "after-checkpoint";
    case KillPoint::kBetweenMiners:
      return "between-miners";
  }
  return "unknown";
}

Result<KillPoint> KillPointFromName(std::string_view name) {
  for (KillPoint point :
       {KillPoint::kNone, KillPoint::kAfterDayMined,
        KillPoint::kMidSnapshotWrite, KillPoint::kAfterCheckpoint,
        KillPoint::kBetweenMiners}) {
    if (KillPointName(point) == name) return point;
  }
  return Status::InvalidArgument("unknown kill point: " + std::string(name));
}

CrashPlan RandomCrashPlan(Rng* rng, int num_days, int num_techniques) {
  CrashPlan plan;
  // kBetweenMiners only exists when a second technique follows the first.
  const bool boundaries = num_techniques > 1;
  const int64_t kinds = boundaries ? 4 : 3;
  switch (rng->UniformInt(0, kinds - 1)) {
    case 0:
      plan.point = KillPoint::kAfterDayMined;
      break;
    case 1:
      plan.point = KillPoint::kMidSnapshotWrite;
      break;
    case 2:
      plan.point = KillPoint::kAfterCheckpoint;
      break;
    default:
      plan.point = KillPoint::kBetweenMiners;
      break;
  }
  if (plan.point == KillPoint::kBetweenMiners) {
    plan.index = static_cast<int>(rng->UniformInt(0, num_techniques - 2));
  } else {
    plan.index =
        static_cast<int>(rng->UniformInt(0, std::max(0, num_days - 1)));
  }
  return plan;
}

bool CrashInjector::ShouldKill(KillPoint point, int index) {
  if (fired_ || plan_.point != point || plan_.index != index) return false;
  fired_ = true;
  return true;
}

Status CrashInjector::KilledStatus(KillPoint point, int index) {
  return Status::Internal("simulated crash at " +
                          std::string(KillPointName(point)) + " #" +
                          std::to_string(index));
}

}  // namespace logmine::sim
