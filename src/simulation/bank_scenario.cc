#include "simulation/bank_scenario.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "simulation/workload.h"
#include "util/string_util.h"

namespace logmine::sim {
namespace {

struct AppSpec {
  std::string_view name;
  Tier tier;
  std::string_view entry;  // primary directory entry id ("" = none)
};

constexpr std::array<AppSpec, 18> kBankApps = {{
    {"EBankingWeb", Tier::kClient, ""},
    {"MobileApp", Tier::kClient, ""},
    {"TellerDesk", Tier::kClient, ""},
    {"AdvisorWorkbench", Tier::kClient, ""},
    {"AccountsSrv", Tier::kService, "ACCSRV"},
    {"PaymentsSrv", Tier::kService, "PAYSRV"},
    {"CardsSrv", Tier::kService, "CARDSRV"},
    {"FraudCheck", Tier::kService, "FRAUDSRV"},
    {"FxRatesSrv", Tier::kService, "FXSRV"},
    {"LoansSrv", Tier::kService, "LOANSRV2"},
    {"NotifyGateway", Tier::kService, "NOTIFYGW"},
    {"DocVault", Tier::kService, "DOCVAULT"},
    {"CustomerIndex", Tier::kService, "CUSTIDX"},
    {"LedgerDB", Tier::kBackend, "LEDGER"},
    {"CustomerDB", Tier::kBackend, "CUSTDB"},
    {"ArchiveStore", Tier::kBackend, "ARCHSTORE"},
    {"SwiftBridge", Tier::kIntegration, "SWIFTBR"},
    {"EodBatch", Tier::kDaemon, ""},
}};

}  // namespace

Result<HugScenario> BuildBankScenario(const BankScenarioConfig& config) {
  HugScenario scenario;
  Topology& topology = scenario.topology;
  ServiceDirectory& directory = scenario.directory;
  Rng rng(config.seed);
  Rng topo_rng = rng.Fork("bank-topology");

  // ---- applications and directory ---------------------------------------
  int host_counter = 0;
  for (size_t i = 0; i < kBankApps.size(); ++i) {
    Application app;
    app.name = std::string(kBankApps[i].name);
    app.tier = kBankApps[i].tier;
    app.invocation_style = static_cast<InvocationLogStyle>(
        i % static_cast<size_t>(kNumInvocationLogStyles));
    app.invocation_log_prob = topo_rng.Uniform(0.9, 1.0);
    app.background_rate_per_hour =
        app.tier == Tier::kClient ? topo_rng.Uniform(10, 25)
                                  : topo_rng.Uniform(50, 120);
    app.nt_clock = app.tier == Tier::kClient || topo_rng.Bernoulli(0.3);
    if (app.tier != Tier::kClient) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "app%02d.bank.example",
                    host_counter++);
      app.host = buf;
    }
    topology.apps.push_back(std::move(app));
    if (!kBankApps[i].entry.empty()) {
      ServiceEntry entry;
      entry.id = std::string(kBankApps[i].entry);
      entry.server_host = topology.apps.back().host;
      entry.root_url =
          "https://" + entry.server_host + "/api/" + ToLower(entry.id);
      entry.num_replicas = 1 + static_cast<int>(topo_rng.UniformInt(0, 1));
      LOGMINE_RETURN_IF_ERROR(directory.Add(entry));
      topology.apps.back().provided_entries.push_back(
          static_cast<int>(directory.size()) - 1);
    }
  }
  // A second entry for PaymentsSrv (the instant-payments API).
  {
    ServiceEntry entry;
    entry.id = "PAYSRVINSTANT";
    const Application& payments = topology.apps[5];
    entry.server_host = payments.host;
    entry.root_url = "https://" + entry.server_host + "/api/paysrvinstant";
    entry.num_replicas = 2;
    LOGMINE_RETURN_IF_ERROR(directory.Add(entry));
    topology.apps[5].provided_entries.push_back(
        static_cast<int>(directory.size()) - 1);
  }

  // ---- invocation edges ---------------------------------------------------
  std::set<std::pair<int, int>> guard;
  auto add_edge = [&](std::string_view caller, std::string_view callee,
                      double weight, bool async) {
    const int from = topology.FindApp(caller);
    const int to = topology.FindApp(callee);
    const auto key = std::minmax(from, to);
    if (guard.count({key.first, key.second})) return -1;
    guard.insert({key.first, key.second});
    InvocationEdge edge;
    edge.caller = from;
    edge.callee = to;
    const auto& provided =
        topology.apps[static_cast<size_t>(to)].provided_entries;
    edge.cited_entry = provided.empty() ? -1 : provided[0];
    edge.true_entry = edge.cited_entry;
    edge.weight = weight;
    edge.asynchronous = async;
    topology.edges.push_back(edge);
    return static_cast<int>(topology.edges.size()) - 1;
  };
  add_edge("EBankingWeb", "AccountsSrv", 3.0, false);
  add_edge("EBankingWeb", "PaymentsSrv", 1.6, false);
  add_edge("EBankingWeb", "DocVault", 0.6, false);
  add_edge("MobileApp", "AccountsSrv", 2.2, false);
  add_edge("MobileApp", "CardsSrv", 1.0, false);
  add_edge("MobileApp", "FxRatesSrv", 0.8, false);
  add_edge("TellerDesk", "CustomerIndex", 1.5, false);
  add_edge("TellerDesk", "PaymentsSrv", 0.9, false);
  add_edge("TellerDesk", "LoansSrv", 0.5, false);
  add_edge("AdvisorWorkbench", "CustomerIndex", 1.2, false);
  add_edge("AdvisorWorkbench", "LoansSrv", 0.8, false);
  add_edge("AdvisorWorkbench", "DocVault", 0.7, false);
  add_edge("AccountsSrv", "LedgerDB", 1.0, false);
  add_edge("AccountsSrv", "CustomerDB", 0.8, false);
  add_edge("PaymentsSrv", "FraudCheck", 1.0, false);
  add_edge("PaymentsSrv", "LedgerDB", 1.0, false);
  add_edge("PaymentsSrv", "SwiftBridge", 0.5, false);
  add_edge("PaymentsSrv", "NotifyGateway", 0.7, true);
  add_edge("CardsSrv", "FraudCheck", 0.7, false);
  add_edge("CardsSrv", "CustomerDB", 0.6, false);
  add_edge("LoansSrv", "CustomerIndex", 0.7, false);
  add_edge("LoansSrv", "DocVault", 0.5, false);
  add_edge("FraudCheck", "CustomerDB", 0.6, false);
  add_edge("CustomerIndex", "CustomerDB", 1.0, false);
  add_edge("DocVault", "ArchiveStore", 0.8, false);
  add_edge("NotifyGateway", "MobileApp", 0.6, true);  // push notification
  add_edge("EodBatch", "LedgerDB", 1.0, false);
  add_edge("EodBatch", "AccountsSrv", 0.8, false);
  add_edge("EodBatch", "ArchiveStore", 0.6, false);

  // ---- defects -------------------------------------------------------------
  Rng defect_rng = rng.Fork("bank-defects");
  LOGMINE_RETURN_IF_ERROR(ApplyDefects(config.defects, directory,
                                       &defect_rng, &topology,
                                       &scenario.defects));

  // ---- use cases -----------------------------------------------------------
  Rng uc_rng = rng.Fork("bank-usecases");
  std::map<int, std::vector<int>> out_edges;
  for (size_t e = 0; e < topology.edges.size(); ++e) {
    out_edges[topology.edges[e].caller].push_back(static_cast<int>(e));
  }
  // One use case per client edge with one level of nesting; a batch use
  // case per non-client app covering its out-edges.
  std::function<CallStep(int, int)> expand = [&](int edge, int depth) {
    CallStep step;
    step.edge = edge;
    if (depth >= 2) return step;
    const int callee = topology.edges[static_cast<size_t>(edge)].callee;
    auto it = out_edges.find(callee);
    if (it == out_edges.end()) return step;
    for (int child : it->second) {
      const double weight = topology.edges[static_cast<size_t>(child)].weight;
      if (uc_rng.Bernoulli(std::min(0.9, 0.5 * weight + 0.2))) {
        step.children.push_back(expand(child, depth + 1));
      }
    }
    return step;
  };
  int counter = 0;
  for (const auto& [app, edges] : out_edges) {
    const bool is_client =
        topology.apps[static_cast<size_t>(app)].tier == Tier::kClient;
    if (is_client) {
      for (int e : edges) {
        UseCase uc;
        uc.name = "bank-uc-" + std::to_string(counter++);
        uc.root_app = app;
        uc.steps.push_back(expand(e, 0));
        uc.weight = topology.edges[static_cast<size_t>(e)].weight;
        topology.use_cases.push_back(std::move(uc));
      }
    } else {
      UseCase uc;
      uc.name = "bank-batch-" + std::to_string(counter++);
      uc.root_app = app;
      double weight_sum = 0;
      for (int e : edges) {
        uc.steps.push_back(expand(e, 1));
        weight_sum += topology.edges[static_cast<size_t>(e)].weight;
      }
      uc.weight = weight_sum / static_cast<double>(edges.size());
      topology.batch_use_cases.push_back(std::move(uc));
    }
  }

  LOGMINE_RETURN_IF_ERROR(topology.Validate(directory));
  scenario.interaction_pairs = topology.InteractionPairs();
  scenario.app_service_deps = topology.AppServiceDeps(directory);
  return scenario;
}

SimulationConfig BankSimulationDefaults() {
  SimulationConfig config;
  config.seed = 8;
  config.anon_executions_per_weekday = 5000;
  config.batch_executions_per_day = 120;
  config.workload.sessions_per_weekday = 450;
  config.workload.num_users = 600;
  config.workload.num_workstations = 400;
  // Customer sessions are fully traced: context-rich logs.
  config.client_context_prob = 0.98;
  config.service_context_prob = 0.4;
  return config;
}

}  // namespace logmine::sim
