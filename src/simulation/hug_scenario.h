#ifndef LOGMINE_SIMULATION_HUG_SCENARIO_H_
#define LOGMINE_SIMULATION_HUG_SCENARIO_H_

#include <set>
#include <string>
#include <utility>

#include "simulation/defects.h"
#include "simulation/directory.h"
#include "simulation/topology.h"
#include "util/result.h"

namespace logmine::sim {

/// Parameters of the preset hospital landscape.
struct HugScenarioConfig {
  uint64_t seed = 20051206;
  DefectCatalog defects;
};

/// A complete, validated scenario: the landscape, its service directory,
/// the record of injected logging defects, and the two ground-truth
/// reference models the paper evaluates against.
struct HugScenario {
  Topology topology;
  ServiceDirectory directory;
  AppliedDefects defects;
  /// Reference model for L1/L2: unordered pairs of directly interacting
  /// application names (~178 of 54*53/2 pairs in the paper).
  std::set<std::pair<std::string, std::string>> interaction_pairs;
  /// Reference model for L3: (application, directory entry id) pairs
  /// (~177 in the paper).
  std::set<std::pair<std::string, std::string>> app_service_deps;
};

/// Builds the HUG-like landscape: 54 applications (12 clients, 26
/// services, 8 backends, 4 integration bridges, 4 daemons), a 47-entry
/// service directory, ~175 interaction edges realized through generated
/// use-case trees, and the full defect catalog of §4.8. Deterministic in
/// `config.seed`.
Result<HugScenario> BuildHugScenario(const HugScenarioConfig& config);

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_HUG_SCENARIO_H_
