#ifndef LOGMINE_SIMULATION_DEFECTS_H_
#define LOGMINE_SIMULATION_DEFECTS_H_

#include <utility>
#include <vector>

#include "simulation/directory.h"
#include "simulation/topology.h"
#include "util/rng.h"

namespace logmine::sim {

/// The catalog of *logging defects* injected into a clean topology so the
/// corpus exhibits every error source of the paper's §4.8 analysis.
/// Counts follow the paper's union-over-seven-days taxonomy.
struct DefectCatalog {
  /// Interactions never logged by the caller (L3 false negatives; their
  /// caller apps are the ones removed in the §4.9 load experiment).
  int unlogged_edges = 7;
  /// Interactions logged under a stale id absent from the directory
  /// ("UPSRV" instead of "UPSRV2"): pure false negatives.
  int wrong_name_edges = 3;
  /// Interactions citing a similar but *wrong* (valid) entry: a false
  /// positive on the cited entry plus a false negative on the true one.
  int erroneous_id_edges = 5;
  /// Provider apps that log calls they receive, citing their own group
  /// (inverted dependencies unless a stop pattern suppresses the log).
  int server_side_loggers = 24;
  /// Of those, how many use a format the default stop patterns miss.
  int uncovered_server_side_loggers = 2;
  /// Edges whose failures leak a transitive citation via a logged stack
  /// trace returned through the intermediary.
  int exception_edges = 5;
  /// (app, entry) pairs where the entry id shows up coincidentally in the
  /// app's data (patient names etc.).
  int coincidence_pairs = 7;
  /// Edges "used extremely seldom" — near-zero weight, likely absent
  /// from any given week.
  int rare_edges = 6;
};

/// Record of where each defect landed, for tests and the experiment
/// harness (e.g. which apps to exclude in the load experiment).
struct AppliedDefects {
  std::vector<int> unlogged_edges;
  std::vector<int> wrong_name_edges;
  std::vector<int> erroneous_id_edges;
  std::vector<int> server_side_apps;
  std::vector<int> uncovered_server_side_apps;
  std::vector<int> exception_edges;
  std::vector<std::pair<int, int>> coincidences;  ///< (app, entry)
  std::vector<int> rare_edges;
  /// Distinct caller apps of `unlogged_edges`.
  std::vector<int> apps_with_unlogged_invocations;
};

/// Mutates `topology` according to `catalog`. Requires a validated
/// topology whose edges are still defect-free. Deterministic given `rng`.
/// Fails when the topology is too small to host the requested counts.
Status ApplyDefects(const DefectCatalog& catalog,
                    const ServiceDirectory& directory, Rng* rng,
                    Topology* topology, AppliedDefects* applied);

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_DEFECTS_H_
