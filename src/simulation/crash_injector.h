#ifndef LOGMINE_SIMULATION_CRASH_INJECTOR_H_
#define LOGMINE_SIMULATION_CRASH_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace logmine::sim {

/// The named instants at which the kill-point harness can terminate a
/// resumable mining run — chosen to cover every distinct durability
/// state a real crash can leave behind.
enum class KillPoint : uint32_t {
  kNone = 0,
  /// A day is mined but its snapshot was never written: the resumed run
  /// must re-mine that day and still converge to the same bytes.
  kAfterDayMined,
  /// The process dies while the snapshot bytes are leaving the buffer:
  /// the harness leaves a *truncated* file at the final checkpoint path
  /// (simulating torn I/O / on-disk corruption), so recovery must
  /// discard the newest generation and fall back.
  kMidSnapshotWrite,
  /// The snapshot is durable but the next day never starts — the
  /// cleanest crash; recovery should mine only the remaining days.
  kAfterCheckpoint,
  /// Between two techniques of a multi-miner sweep (after L1 completes,
  /// before L2 starts, and so on).
  kBetweenMiners,
};

/// Stable name used in flags, logs and test output (e.g.
/// "mid-snapshot-write").
std::string_view KillPointName(KillPoint point);

/// Parses the result of KillPointName back; InvalidArgument otherwise.
Result<KillPoint> KillPointFromName(std::string_view name);

/// Where to kill: a point plus its occurrence index — the day number
/// for day-scoped points, or the number of completed techniques for
/// kBetweenMiners (0 = after the first technique).
struct CrashPlan {
  KillPoint point = KillPoint::kNone;
  int index = 0;
};

/// Draws a uniformly random plan over every kill point a sweep of
/// `num_days` days and `num_techniques` techniques exposes — all
/// randomness from the caller's seeded Rng, so a fuzzing sweep over
/// seeds is exactly reproducible.
CrashPlan RandomCrashPlan(Rng* rng, int num_days, int num_techniques);

/// Arms one crash plan. The runner under test asks `ShouldKill` at each
/// named point; the injector fires exactly once, when the armed
/// (point, index) comes up. A fired injector reports `fired()` so tests
/// can assert the plan was actually reachable.
class CrashInjector {
 public:
  explicit CrashInjector(CrashPlan plan) : plan_(plan) {}

  /// True exactly once, when (point, index) matches the armed plan.
  bool ShouldKill(KillPoint point, int index);

  bool fired() const { return fired_; }
  const CrashPlan& plan() const { return plan_; }

  /// The status a killed run returns — Internal, carrying the kill
  /// point's name, so tests can tell a simulated death from a real bug.
  static Status KilledStatus(KillPoint point, int index);

 private:
  CrashPlan plan_;
  bool fired_ = false;
};

// ---------------------------------------------------------------------------
// Shard fault plans: the chaos axis of the sharded sweep supervisor.
// Where the kill-point harness above terminates a *process*, a shard
// fault plan misbehaves individual (day × pair-range) shard attempts —
// fail, hang, corrupt, or slow them — so the supervisor's retry, hedge
// and circuit-breaker machinery can be driven deterministically.

/// What a faulted shard attempt does.
enum class ShardFault : uint32_t {
  kNone = 0,
  /// The attempt fails with Internal before mining — the classic
  /// transient worker death; retryable.
  kFailTransient,
  /// The attempt never finishes on its own: it waits cooperatively
  /// until the shard deadline (or cancellation) trips, then returns
  /// DeadlineExceeded. Exercises the deadline + hedging paths.
  kHang,
  /// The attempt mines correctly but its serialized partial model is
  /// corrupted in flight; validation rejects it (ParseError) and the
  /// retry must re-mine.
  kCorruptModel,
  /// The attempt sleeps before mining, then succeeds. Not a failure —
  /// exercises the straggler-hedging path without losing work.
  kSlow,
};

/// Stable name used in flags and test output (e.g. "fail-transient").
std::string_view ShardFaultName(ShardFault fault);

/// Parses the result of ShardFaultName back; InvalidArgument otherwise.
Result<ShardFault> ShardFaultFromName(std::string_view name);

/// `times` value meaning "every attempt, forever" — a permanent fault
/// the supervisor can only resolve by quarantining the shard.
inline constexpr int kShardFaultAlways = INT32_MAX;

/// One shard's misbehaviour: fault `fault` on its first `times`
/// attempts (hedges count as attempts), then behave normally.
struct ShardFaultSpec {
  int day = 0;
  int range_index = 0;
  ShardFault fault = ShardFault::kNone;
  int times = 1;
  /// Delay for kSlow (and the bounded wait for kHang when the run has
  /// no deadline to trip).
  int64_t slow_ms = 20;
};

/// A full chaos plan: at most one spec per shard cell.
struct ShardFaultPlan {
  std::vector<ShardFaultSpec> faults;
};

struct ShardFaultPlanOptions {
  /// Upper bound on distinct faulty shards (capped by the grid size).
  int max_faulty_shards = 3;
  /// Upper bound on `times` for transient faults.
  int max_times = 2;
  /// Probability a drawn fault is permanent (times = kShardFaultAlways).
  double permanent_fraction = 0.0;
};

/// Draws a seeded random plan over a `num_days` x `num_ranges` grid:
/// distinct shards, random fault kinds and repeat counts — all
/// randomness from the caller's Rng, so a chaos sweep over seeds is
/// exactly reproducible.
ShardFaultPlan RandomShardFaultPlan(Rng* rng, int num_days, int num_ranges,
                                    const ShardFaultPlanOptions& options);

/// Evaluates a plan. A pure function of (plan, shard, attempt): unlike
/// CrashInjector it keeps no fired-state, so concurrent shard attempts
/// can consult it without synchronization and a rerun of the same plan
/// sees the same faults.
class ShardFaultInjector {
 public:
  explicit ShardFaultInjector(ShardFaultPlan plan) : plan_(std::move(plan)) {}

  /// The fault this attempt should exhibit; `attempt` is 1-based and
  /// counts every launch of the shard, hedges included. kNone once the
  /// spec's `times` are spent.
  ShardFault OnAttempt(int day, int range_index, int attempt) const;

  /// The spec covering a shard, or nullptr when it behaves normally.
  const ShardFaultSpec* SpecFor(int day, int range_index) const;

  /// The cells no amount of retrying can save: permanent faults other
  /// than kSlow (a permanently slow shard still completes). Exactly the
  /// cells a degraded run must report as uncovered, in (day, range)
  /// order.
  std::vector<std::pair<int, int>> PermanentlyPoisoned() const;

  const ShardFaultPlan& plan() const { return plan_; }

 private:
  ShardFaultPlan plan_;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_CRASH_INJECTOR_H_
