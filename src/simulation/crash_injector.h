#ifndef LOGMINE_SIMULATION_CRASH_INJECTOR_H_
#define LOGMINE_SIMULATION_CRASH_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace logmine::sim {

/// The named instants at which the kill-point harness can terminate a
/// resumable mining run — chosen to cover every distinct durability
/// state a real crash can leave behind.
enum class KillPoint : uint32_t {
  kNone = 0,
  /// A day is mined but its snapshot was never written: the resumed run
  /// must re-mine that day and still converge to the same bytes.
  kAfterDayMined,
  /// The process dies while the snapshot bytes are leaving the buffer:
  /// the harness leaves a *truncated* file at the final checkpoint path
  /// (simulating torn I/O / on-disk corruption), so recovery must
  /// discard the newest generation and fall back.
  kMidSnapshotWrite,
  /// The snapshot is durable but the next day never starts — the
  /// cleanest crash; recovery should mine only the remaining days.
  kAfterCheckpoint,
  /// Between two techniques of a multi-miner sweep (after L1 completes,
  /// before L2 starts, and so on).
  kBetweenMiners,
};

/// Stable name used in flags, logs and test output (e.g.
/// "mid-snapshot-write").
std::string_view KillPointName(KillPoint point);

/// Parses the result of KillPointName back; InvalidArgument otherwise.
Result<KillPoint> KillPointFromName(std::string_view name);

/// Where to kill: a point plus its occurrence index — the day number
/// for day-scoped points, or the number of completed techniques for
/// kBetweenMiners (0 = after the first technique).
struct CrashPlan {
  KillPoint point = KillPoint::kNone;
  int index = 0;
};

/// Draws a uniformly random plan over every kill point a sweep of
/// `num_days` days and `num_techniques` techniques exposes — all
/// randomness from the caller's seeded Rng, so a fuzzing sweep over
/// seeds is exactly reproducible.
CrashPlan RandomCrashPlan(Rng* rng, int num_days, int num_techniques);

/// Arms one crash plan. The runner under test asks `ShouldKill` at each
/// named point; the injector fires exactly once, when the armed
/// (point, index) comes up. A fired injector reports `fired()` so tests
/// can assert the plan was actually reachable.
class CrashInjector {
 public:
  explicit CrashInjector(CrashPlan plan) : plan_(plan) {}

  /// True exactly once, when (point, index) matches the armed plan.
  bool ShouldKill(KillPoint point, int index);

  bool fired() const { return fired_; }
  const CrashPlan& plan() const { return plan_; }

  /// The status a killed run returns — Internal, carrying the kill
  /// point's name, so tests can tell a simulated death from a real bug.
  static Status KilledStatus(KillPoint point, int index);

 private:
  CrashPlan plan_;
  bool fired_ = false;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_CRASH_INJECTOR_H_
