#include "simulation/workload.h"

#include <cassert>
#include <cmath>

namespace logmine::sim {

double DiurnalProfile::IntensityAt(TimeMs t) const {
  const auto hour = static_cast<size_t>(HourOfDay(t));
  return IsWeekend(t) ? weekend[hour] : weekday[hour];
}

DiurnalProfile DiurnalProfile::Hospital() {
  DiurnalProfile p;
  constexpr std::array<double, 24> kWeekday = {
      0.14, 0.10, 0.08, 0.08, 0.11, 0.20, 0.65, 1.35,  // 0-7
      1.95, 2.25, 2.20, 1.95, 1.60, 1.75, 2.05, 2.10,  // 8-15
      1.80, 1.40, 0.95, 0.65, 0.45, 0.32, 0.24, 0.18,  // 16-23
  };
  p.weekday = kWeekday;
  for (size_t h = 0; h < 24; ++h) {
    // Weekend: roughly a third of the volume, flatter daytime shape.
    p.weekend[h] = 0.33 * (0.65 * kWeekday[h] + 0.35);
  }
  return p;
}

double LogNormal(double median, double log_sigma, Rng* rng) {
  assert(median > 0 && log_sigma >= 0);
  return median * std::exp(rng->Normal(0.0, log_sigma));
}

std::vector<SessionPlan> PlanDaySessions(TimeMs day_start,
                                         const DiurnalProfile& profile,
                                         const WorkloadConfig& config,
                                         const std::vector<int>& day_clients,
                                         const std::vector<int>& night_clients,
                                         Rng* rng) {
  assert(!day_clients.empty());
  std::vector<SessionPlan> plans;
  // Expected sessions per hour proportional to the profile; the weekday
  // profile averages ~1.0 so `sessions_per_weekday` is hit on weekdays.
  for (int hour = 0; hour < 24; ++hour) {
    const TimeMs hour_start = day_start + hour * kMillisPerHour;
    const double raw_intensity = profile.IntensityAt(hour_start);
    // Care providers work around the clock: identified sessions dip far
    // less at night than the overall log volume does.
    const double intensity = std::max(raw_intensity, 0.45);
    const bool night_regime = raw_intensity < kNightRegimeIntensity &&
                              !night_clients.empty();
    const std::vector<int>& clients =
        night_regime ? night_clients : day_clients;
    const double expected = config.sessions_per_weekday / 24.0 * intensity;
    const int64_t count = rng->Poisson(expected);
    for (int64_t i = 0; i < count; ++i) {
      SessionPlan plan;
      plan.start = hour_start + rng->UniformInt(0, kMillisPerHour - 1);
      const double minutes =
          LogNormal(config.mean_session_minutes * 0.8, 0.6, rng);
      plan.end = plan.start +
                 static_cast<TimeMs>(minutes * kMillisPerMinute);
      plan.user = static_cast<int>(
          rng->UniformInt(0, config.num_users - 1));
      plan.workstation = static_cast<int>(
          rng->UniformInt(0, config.num_workstations - 1));
      plan.client_app = clients[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(clients.size()) - 1))];
      plans.push_back(plan);
    }
  }
  return plans;
}

}  // namespace logmine::sim
