#include "simulation/corruptor.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace logmine::sim {
namespace {

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> segments;
  size_t start = 0;
  for (;;) {
    const size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      segments.emplace_back(text.substr(start));
      return segments;
    }
    segments.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
}

bool IsBlank(std::string_view line) { return Trim(line).empty(); }

// Most recent index j < i whose current content is non-blank, or -1.
int64_t PreviousNonBlank(const std::vector<std::string>& lines, size_t i) {
  for (int64_t j = static_cast<int64_t>(i) - 1; j >= 0; --j) {
    if (!IsBlank(lines[static_cast<size_t>(j)])) return j;
  }
  return -1;
}

}  // namespace

std::string_view CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kTruncate:
      return "Truncate";
    case CorruptionKind::kMangleEscape:
      return "MangleEscape";
    case CorruptionKind::kGarbageBytes:
      return "GarbageBytes";
    case CorruptionKind::kReorder:
      return "Reorder";
    case CorruptionKind::kDuplicate:
      return "Duplicate";
    case CorruptionKind::kClockJump:
      return "ClockJump";
    case CorruptionKind::kBlankContext:
      return "BlankContext";
  }
  return "Unknown";
}

std::string CorruptionReport::ToString() const {
  std::string out = "corruptor: hit " + std::to_string(lines_corrupted) +
                    " of " + std::to_string(lines_total) + " lines";
  if (lines_corrupted > 0) {
    out += " (";
    bool first = true;
    for (size_t k = 0; k < kNumCorruptionKinds; ++k) {
      if (by_kind[k] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string(CorruptionKindName(static_cast<CorruptionKind>(k))) +
             "=" + std::to_string(by_kind[k]);
    }
    out += ")";
  }
  out += "\n  expected ingest: " + std::to_string(expected_records) +
         " records, " + std::to_string(expected_quarantined) + " quarantined";
  for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
    if (expected_by_class[c] == 0) continue;
    out += "\n    " +
           std::string(IngestErrorClassName(static_cast<IngestErrorClass>(c))) +
           "=" + std::to_string(expected_by_class[c]);
  }
  return out;
}

std::string CorruptCorpusText(std::string_view clean_text,
                              const CorruptorConfig& config, Rng* rng,
                              CorruptionReport* report) {
  std::vector<std::string> lines = SplitLines(clean_text);
  std::vector<int> extra_copies(lines.size(), 0);
  CorruptionReport local;
  CorruptionReport* tally = report != nullptr ? report : &local;
  *tally = CorruptionReport{};

  const std::vector<double> weights = {
      config.truncate_weight,     config.mangle_escape_weight,
      config.garbage_weight,      config.reorder_weight,
      config.duplicate_weight,    config.clock_jump_weight,
      config.blank_context_weight};
  double weight_sum = 0;
  for (double w : weights) weight_sum += w;

  for (size_t i = 0; i < lines.size(); ++i) {
    if (IsBlank(lines[i])) continue;
    ++tally->lines_total;
    if (config.rate <= 0.0 || weight_sum <= 0.0) continue;
    if (!rng->Bernoulli(config.rate)) continue;
    // Refuse to double-corrupt: a line that is already malformed in the
    // input is left alone, so every injected fault is attributable.
    auto clean = LineCodec::Decode(lines[i]);
    if (!clean.ok()) continue;

    const auto kind = static_cast<CorruptionKind>(rng->WeightedIndex(weights));
    std::string& line = lines[i];
    bool applied = true;
    switch (kind) {
      case CorruptionKind::kTruncate: {
        const auto new_len = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(line.size()) - 1));
        line.resize(new_len);
        break;
      }
      case CorruptionKind::kMangleEscape: {
        if (rng->Bernoulli(0.5)) {
          line += '\\';  // dangling escape at end of line
        } else {
          const auto pos = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(line.size())));
          line.insert(pos, "\\q");  // unknown escape
        }
        break;
      }
      case CorruptionKind::kGarbageBytes: {
        const auto pos = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(line.size()) - 1));
        const auto span =
            static_cast<size_t>(rng->UniformInt(1, 12));
        for (size_t p = pos; p < std::min(pos + span, line.size()); ++p) {
          char c;
          do {
            c = static_cast<char>(rng->UniformInt(1, 255));
          } while (c == '\n');
          line[p] = c;
        }
        break;
      }
      case CorruptionKind::kReorder: {
        const int64_t j = PreviousNonBlank(lines, i);
        if (j < 0) {
          applied = false;  // nothing earlier to swap with
          break;
        }
        std::swap(lines[static_cast<size_t>(j)], line);
        break;
      }
      case CorruptionKind::kDuplicate: {
        ++extra_copies[i];
        break;
      }
      case CorruptionKind::kClockJump: {
        LogRecord record = std::move(clean).value();
        const TimeMs magnitude =
            rng->UniformInt(1, std::max<TimeMs>(config.max_clock_jump_ms, 1));
        const TimeMs jump = rng->Bernoulli(0.5) ? magnitude : -magnitude;
        record.client_ts += jump;
        record.server_ts += jump;
        line = LineCodec::Encode(record);
        break;
      }
      case CorruptionKind::kBlankContext: {
        LogRecord record = std::move(clean).value();
        record.host.clear();
        record.user.clear();
        line = LineCodec::Encode(record);
        break;
      }
    }
    if (applied) {
      ++tally->lines_corrupted;
      ++tally->by_kind[static_cast<size_t>(kind)];
    }
  }

  // Reassemble (duplicates emitted right after their original) and
  // recompute the exact ingest outcome by re-decoding every output line:
  // the report's expectations are guaranteed to match what a
  // quarantine-mode DecodeAll will tally.
  std::string out;
  out.reserve(clean_text.size() + 64);
  bool first_segment = true;
  auto emit = [&](const std::string& segment) {
    if (!first_segment) out += '\n';
    first_segment = false;
    out += segment;
    if (IsBlank(segment)) return;
    IngestErrorClass error_class = IngestErrorClass::kFieldCount;
    if (LineCodec::Decode(segment, &error_class).ok()) {
      ++tally->expected_records;
    } else {
      ++tally->expected_quarantined;
      ++tally->expected_by_class[static_cast<size_t>(error_class)];
    }
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    emit(lines[i]);
    for (int c = 0; c < extra_copies[i]; ++c) emit(lines[i]);
  }
  return out;
}

Status CorruptCorpusFile(const std::string& input_path,
                         const std::string& output_path,
                         const CorruptorConfig& config, Rng* rng,
                         CorruptionReport* report) {
  std::ifstream in(input_path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + input_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string corrupted =
      CorruptCorpusText(buffer.str(), config, rng, report);
  std::ofstream out(output_path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + output_path);
  }
  out << corrupted;
  out.flush();
  if (!out) return Status::Internal("write failed: " + output_path);
  return Status::OK();
}

}  // namespace logmine::sim
