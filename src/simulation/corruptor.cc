#include "simulation/corruptor.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/snapshot.h"
#include "util/string_util.h"

namespace logmine::sim {
namespace {

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> segments;
  size_t start = 0;
  for (;;) {
    const size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      segments.emplace_back(text.substr(start));
      return segments;
    }
    segments.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
}

bool IsBlank(std::string_view line) { return Trim(line).empty(); }

// Most recent index j < i whose current content is non-blank, or -1.
int64_t PreviousNonBlank(const std::vector<std::string>& lines, size_t i) {
  for (int64_t j = static_cast<int64_t>(i) - 1; j >= 0; --j) {
    if (!IsBlank(lines[static_cast<size_t>(j)])) return j;
  }
  return -1;
}

}  // namespace

std::string_view CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kTruncate:
      return "Truncate";
    case CorruptionKind::kMangleEscape:
      return "MangleEscape";
    case CorruptionKind::kGarbageBytes:
      return "GarbageBytes";
    case CorruptionKind::kReorder:
      return "Reorder";
    case CorruptionKind::kDuplicate:
      return "Duplicate";
    case CorruptionKind::kClockJump:
      return "ClockJump";
    case CorruptionKind::kBlankContext:
      return "BlankContext";
  }
  return "Unknown";
}

std::string CorruptionReport::ToString() const {
  std::string out = "corruptor: hit " + std::to_string(lines_corrupted) +
                    " of " + std::to_string(lines_total) + " lines";
  if (lines_corrupted > 0) {
    out += " (";
    bool first = true;
    for (size_t k = 0; k < kNumCorruptionKinds; ++k) {
      if (by_kind[k] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string(CorruptionKindName(static_cast<CorruptionKind>(k))) +
             "=" + std::to_string(by_kind[k]);
    }
    out += ")";
  }
  out += "\n  expected ingest: " + std::to_string(expected_records) +
         " records, " + std::to_string(expected_quarantined) + " quarantined";
  for (size_t c = 0; c < kNumIngestErrorClasses; ++c) {
    if (expected_by_class[c] == 0) continue;
    out += "\n    " +
           std::string(IngestErrorClassName(static_cast<IngestErrorClass>(c))) +
           "=" + std::to_string(expected_by_class[c]);
  }
  return out;
}

std::string CorruptCorpusText(std::string_view clean_text,
                              const CorruptorConfig& config, Rng* rng,
                              CorruptionReport* report) {
  std::vector<std::string> lines = SplitLines(clean_text);
  std::vector<int> extra_copies(lines.size(), 0);
  CorruptionReport local;
  CorruptionReport* tally = report != nullptr ? report : &local;
  *tally = CorruptionReport{};

  const std::vector<double> weights = {
      config.truncate_weight,     config.mangle_escape_weight,
      config.garbage_weight,      config.reorder_weight,
      config.duplicate_weight,    config.clock_jump_weight,
      config.blank_context_weight};
  double weight_sum = 0;
  for (double w : weights) weight_sum += w;

  for (size_t i = 0; i < lines.size(); ++i) {
    if (IsBlank(lines[i])) continue;
    ++tally->lines_total;
    if (config.rate <= 0.0 || weight_sum <= 0.0) continue;
    if (!rng->Bernoulli(config.rate)) continue;
    // Refuse to double-corrupt: a line that is already malformed in the
    // input is left alone, so every injected fault is attributable.
    auto clean = LineCodec::Decode(lines[i]);
    if (!clean.ok()) continue;

    const auto kind = static_cast<CorruptionKind>(rng->WeightedIndex(weights));
    std::string& line = lines[i];
    bool applied = true;
    switch (kind) {
      case CorruptionKind::kTruncate: {
        const auto new_len = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(line.size()) - 1));
        line.resize(new_len);
        break;
      }
      case CorruptionKind::kMangleEscape: {
        if (rng->Bernoulli(0.5)) {
          line += '\\';  // dangling escape at end of line
        } else {
          const auto pos = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(line.size())));
          line.insert(pos, "\\q");  // unknown escape
        }
        break;
      }
      case CorruptionKind::kGarbageBytes: {
        const auto pos = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(line.size()) - 1));
        const auto span =
            static_cast<size_t>(rng->UniformInt(1, 12));
        for (size_t p = pos; p < std::min(pos + span, line.size()); ++p) {
          char c;
          do {
            c = static_cast<char>(rng->UniformInt(1, 255));
          } while (c == '\n');
          line[p] = c;
        }
        break;
      }
      case CorruptionKind::kReorder: {
        const int64_t j = PreviousNonBlank(lines, i);
        if (j < 0) {
          applied = false;  // nothing earlier to swap with
          break;
        }
        std::swap(lines[static_cast<size_t>(j)], line);
        break;
      }
      case CorruptionKind::kDuplicate: {
        ++extra_copies[i];
        break;
      }
      case CorruptionKind::kClockJump: {
        LogRecord record = std::move(clean).value();
        const TimeMs magnitude =
            rng->UniformInt(1, std::max<TimeMs>(config.max_clock_jump_ms, 1));
        const TimeMs jump = rng->Bernoulli(0.5) ? magnitude : -magnitude;
        record.client_ts += jump;
        record.server_ts += jump;
        line = LineCodec::Encode(record);
        break;
      }
      case CorruptionKind::kBlankContext: {
        LogRecord record = std::move(clean).value();
        record.host.clear();
        record.user.clear();
        line = LineCodec::Encode(record);
        break;
      }
    }
    if (applied) {
      ++tally->lines_corrupted;
      ++tally->by_kind[static_cast<size_t>(kind)];
    }
  }

  // Reassemble (duplicates emitted right after their original) and
  // recompute the exact ingest outcome by re-decoding every output line:
  // the report's expectations are guaranteed to match what a
  // quarantine-mode DecodeAll will tally.
  std::string out;
  out.reserve(clean_text.size() + 64);
  bool first_segment = true;
  auto emit = [&](const std::string& segment) {
    if (!first_segment) out += '\n';
    first_segment = false;
    out += segment;
    if (IsBlank(segment)) return;
    IngestErrorClass error_class = IngestErrorClass::kFieldCount;
    if (LineCodec::Decode(segment, &error_class).ok()) {
      ++tally->expected_records;
    } else {
      ++tally->expected_quarantined;
      ++tally->expected_by_class[static_cast<size_t>(error_class)];
    }
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    emit(lines[i]);
    for (int c = 0; c < extra_copies[i]; ++c) emit(lines[i]);
  }
  return out;
}

namespace {

// Container-structure walk (the layout of util/snapshot.h): returns the
// [offset, length) of `name`'s payload, or 0-length when absent. Walking
// the real section headers instead of string-searching the name keeps a
// message that *contains* "cdict" from fooling the fault injector.
std::pair<size_t, size_t> FindSectionPayload(std::string_view bytes,
                                             std::string_view name) {
  if (bytes.size() < 16) return {0, 0};
  size_t pos = 8;                          // past container magic+version
  const size_t footer_at = bytes.size() - 8;
  while (pos + 4 <= footer_at) {
    uint32_t name_len;
    std::memcpy(&name_len, bytes.data() + pos, 4);
    pos += 4;
    if (footer_at - pos < name_len + 8) return {0, 0};
    const std::string_view section_name = bytes.substr(pos, name_len);
    pos += name_len;
    uint64_t payload_len;
    std::memcpy(&payload_len, bytes.data() + pos, 8);
    pos += 8;
    if (payload_len > footer_at - pos) return {0, 0};
    if (section_name == name) {
      return {pos, static_cast<size_t>(payload_len)};
    }
    pos += static_cast<size_t>(payload_len);
  }
  return {0, 0};
}

}  // namespace

std::string_view ColumnarFaultKindName(ColumnarFaultKind kind) {
  switch (kind) {
    case ColumnarFaultKind::kCorruptDictionaryEntry:
      return "CorruptDictionaryEntry";
    case ColumnarFaultKind::kTruncatedColumnBlock:
      return "TruncatedColumnBlock";
  }
  return "Unknown";
}

Result<std::string> CorruptColumnarBytes(std::string_view clean_bytes,
                                         ColumnarFaultKind kind, Rng* rng,
                                         ColumnarFaultReport* report) {
  // Refuse to double-corrupt, mirroring CorruptCorpusText: the fault
  // must be the only defect, so the detection it triggers is
  // attributable.
  if (auto parsed = SnapshotReader::Parse(std::string(clean_bytes));
      !parsed.ok()) {
    return Status::InvalidArgument("input is not a clean columnar corpus: " +
                                   parsed.status().message());
  }
  ColumnarFaultReport local;
  ColumnarFaultReport* out_report = report != nullptr ? report : &local;
  *out_report = ColumnarFaultReport{};
  out_report->kind = kind;
  std::string out(clean_bytes);
  switch (kind) {
    case ColumnarFaultKind::kCorruptDictionaryEntry: {
      const auto [offset, length] = FindSectionPayload(out, "cdict");
      if (length == 0) {
        return Status::InvalidArgument(
            "columnar corpus has no dictionary section");
      }
      // Flip a short span inside the dictionary payload. The container
      // CRC no longer matches, so a read fails up front instead of
      // serving records under a damaged source/host/user name.
      const auto span = static_cast<size_t>(
          rng->UniformInt(1, static_cast<int64_t>(std::min<size_t>(length, 4))));
      const auto at = offset + static_cast<size_t>(rng->UniformInt(
                                   0, static_cast<int64_t>(length - span)));
      for (size_t p = at; p < at + span; ++p) {
        out[p] = static_cast<char>(out[p] ^ 0x5A);
      }
      out_report->offset = at;
      out_report->bytes_affected = span;
      break;
    }
    case ColumnarFaultKind::kTruncatedColumnBlock: {
      const auto [offset, length] = FindSectionPayload(out, "ctime");
      if (length == 0) {
        return Status::InvalidArgument(
            "columnar corpus has no time column section");
      }
      // Cut the file inside the first column block: everything from the
      // footer back into the timestamp column is gone, the footer magic
      // with it — exactly what a torn write or truncated device yields.
      const auto cut = offset + static_cast<size_t>(rng->UniformInt(
                                    0, static_cast<int64_t>(length) - 1));
      out_report->offset = cut;
      out_report->bytes_affected = out.size() - cut;
      out.resize(cut);
      break;
    }
  }
  return out;
}

Status CorruptColumnarFile(const std::string& input_path,
                           const std::string& output_path,
                           ColumnarFaultKind kind, Rng* rng,
                           ColumnarFaultReport* report) {
  std::ifstream in(input_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + input_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LOGMINE_ASSIGN_OR_RETURN(
      std::string corrupted,
      CorruptColumnarBytes(buffer.str(), kind, rng, report));
  std::ofstream out(output_path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + output_path);
  }
  out << corrupted;
  out.flush();
  if (!out) return Status::Internal("write failed: " + output_path);
  return Status::OK();
}

Status CorruptCorpusFile(const std::string& input_path,
                         const std::string& output_path,
                         const CorruptorConfig& config, Rng* rng,
                         CorruptionReport* report) {
  std::ifstream in(input_path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + input_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string corrupted =
      CorruptCorpusText(buffer.str(), config, rng, report);
  std::ofstream out(output_path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + output_path);
  }
  out << corrupted;
  out.flush();
  if (!out) return Status::Internal("write failed: " + output_path);
  return Status::OK();
}

}  // namespace logmine::sim
