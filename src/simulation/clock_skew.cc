#include "simulation/clock_skew.h"

#include "util/rng.h"

namespace logmine::sim {
namespace {

uint64_t MixHash(uint64_t seed, std::string_view text, uint64_t extra) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= extra + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return SplitMix64(&h);
}

}  // namespace

TimeMs ClockSkewModel::SkewFor(std::string_view host, bool nt_clock,
                               int day_index) const {
  const uint64_t base = MixHash(seed_, host, 0);
  const uint64_t daily =
      MixHash(seed_, host, static_cast<uint64_t>(day_index) + 1);
  if (!nt_clock) {
    // NTP: within +-1 ms.
    return static_cast<TimeMs>(base % 3) - 1;
  }
  if (host.substr(0, 3) == "ws-") {
    // Client workstations sync only within their NT domain; the paper
    // verified the < 1 s bound for NT *servers* but leaves workstations
    // unbounded. Stable offset +-1.5 s plus daily drift +-0.3 s.
    const TimeMs stable = static_cast<TimeMs>(base % 3001) - 1500;
    const TimeMs drift = static_cast<TimeMs>(daily % 601) - 300;
    return stable + drift;
  }
  // NT servers: a stable per-host offset within +-700 ms plus a daily
  // drift within +-150 ms, keeping |skew| < 1 s as verified in the paper.
  const TimeMs stable = static_cast<TimeMs>(base % 1401) - 700;
  const TimeMs drift = static_cast<TimeMs>(daily % 301) - 150;
  return stable + drift;
}

TimeMs ClockSkewModel::BufferDelayFor(std::string_view host, TimeMs t) const {
  // Flush cycle of 0.2 - 5 s, phase-locked per host: reception time is
  // quantized to the next flush boundary plus a small network delay.
  const uint64_t h = MixHash(seed_, host, 42);
  const TimeMs cycle = 200 + static_cast<TimeMs>(h % 4801);
  const TimeMs phase = static_cast<TimeMs>(MixHash(seed_, host, 7) %
                                           static_cast<uint64_t>(cycle));
  const TimeMs next_flush = ((t - phase) / cycle + 1) * cycle + phase;
  const TimeMs network = 2 + static_cast<TimeMs>(MixHash(seed_, host,
                                                         static_cast<uint64_t>(t)) %
                                                 30);
  return (next_flush - t) + network;
}

}  // namespace logmine::sim
