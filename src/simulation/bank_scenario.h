#ifndef LOGMINE_SIMULATION_BANK_SCENARIO_H_
#define LOGMINE_SIMULATION_BANK_SCENARIO_H_

#include "simulation/hug_scenario.h"
#include "simulation/simulator.h"

namespace logmine::sim {

/// Parameters of the e-banking preset.
struct BankScenarioConfig {
  uint64_t seed = 7;
  /// Scaled-down defect catalog fitting the smaller landscape.
  DefectCatalog defects = SmallCatalog();

  static DefectCatalog SmallCatalog() {
    DefectCatalog catalog;
    catalog.unlogged_edges = 2;
    catalog.wrong_name_edges = 1;
    catalog.erroneous_id_edges = 1;
    catalog.server_side_loggers = 5;
    catalog.uncovered_server_side_loggers = 1;
    catalog.exception_edges = 1;
    catalog.coincidence_pairs = 2;
    catalog.rare_edges = 1;
    return catalog;
  }
};

/// Builds the second preset landscape the paper's §1.1/§5 motivate
/// ("large-scale and mission-critical environments, such as hospitals or
/// banks; ... an online banking application for example"): 18
/// applications (4 clients, 9 services, 3 backends, 1 integration, 1
/// batch daemon), a 14-entry service directory, heavy session coverage
/// (every customer interaction is traced), and a scaled-down defect
/// catalog. Reuses the same generation machinery as the HUG preset, so
/// the miners can be evaluated on an environment they were not tuned
/// for.
Result<HugScenario> BuildBankScenario(const BankScenarioConfig& config);

/// Simulation defaults suited to the bank: session-rich, no hospital
/// night-care regime, one day ~ 70 k logs at scale 1.
SimulationConfig BankSimulationDefaults();

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_BANK_SCENARIO_H_
