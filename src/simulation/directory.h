#ifndef LOGMINE_SIMULATION_DIRECTORY_H_
#define LOGMINE_SIMULATION_DIRECTORY_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace logmine::sim {

/// One entry of the service directory: a group of functionally related
/// services, identified by an uppercase id and a root URL — the structure
/// the paper describes for HUG ("an XML file indicating the root URL of
/// groups of functionally related services. All service groups have an
/// identifier, as well as information related to replication issues").
struct ServiceEntry {
  std::string id;        ///< e.g. "DPINOTIFICATION"
  std::string root_url;  ///< e.g. "http://srv-notif.hug.ch:9980/dpinotification"
  std::string server_host;
  int num_replicas = 1;
};

/// The service directory consumed by the L3 miner (and serialized by the
/// simulator in the same XML-ish shape HUG uses).
class ServiceDirectory {
 public:
  ServiceDirectory() = default;

  /// Adds an entry; fails on duplicate id (ids are case-insensitive keys).
  Status Add(ServiceEntry entry);

  size_t size() const { return entries_.size(); }
  const std::vector<ServiceEntry>& entries() const { return entries_; }
  const ServiceEntry& entry(size_t i) const { return entries_[i]; }

  /// Index of the entry with the given id (case-insensitive), or NotFound.
  Result<size_t> FindById(std::string_view id) const;

  /// Serializes to the simple XML format:
  ///   <directory>
  ///     <group id="..." url="..." server="..." replicas="N"/>
  ///   </directory>
  std::string ToXml() const;

  /// Parses the output of `ToXml`. Tolerates whitespace variations only;
  /// anything else is a ParseError.
  static Result<ServiceDirectory> FromXml(std::string_view xml);

 private:
  std::vector<ServiceEntry> entries_;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_DIRECTORY_H_
