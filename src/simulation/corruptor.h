#ifndef LOGMINE_SIMULATION_CORRUPTOR_H_
#define LOGMINE_SIMULATION_CORRUPTOR_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "log/codec.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/time_util.h"

namespace logmine::sim {

/// The catalog of *corpus-level* faults the corruptor can inject into a
/// clean line-format corpus — the transport/storage analogue of the
/// logging defects in `defects.h` (which corrupt the topology, not the
/// bytes). Syntactic kinds break the line so lenient ingest must
/// quarantine it; semantic kinds keep the line well-formed but wrong
/// (the miners must absorb those).
enum class CorruptionKind {
  kTruncate = 0,   ///< line cut short mid-field (syntactic)
  kMangleEscape,   ///< dangling or unknown backslash escape (syntactic)
  kGarbageBytes,   ///< random bytes splatted over a span (syntactic)
  kReorder,        ///< record swapped out of time order (semantic)
  kDuplicate,      ///< record emitted twice (semantic)
  kClockJump,      ///< client/server timestamps jumped by hours (semantic)
  kBlankContext,   ///< user and host fields blanked (semantic)
};
inline constexpr size_t kNumCorruptionKinds = 7;

/// Stable human-readable name for a corruption kind (e.g. "Truncate").
std::string_view CorruptionKindName(CorruptionKind kind);

/// Injection knobs. Kinds draw proportionally to their weight; a zero
/// weight disables the kind.
struct CorruptorConfig {
  /// Probability that any given non-blank line is corrupted.
  double rate = 0.01;
  double truncate_weight = 1.0;
  double mangle_escape_weight = 1.0;
  double garbage_weight = 1.0;
  double reorder_weight = 1.0;
  double duplicate_weight = 1.0;
  double clock_jump_weight = 1.0;
  double blank_context_weight = 1.0;
  /// Maximum magnitude of a clock jump (either direction).
  TimeMs max_clock_jump_ms = 6 * kMillisPerHour;
};

/// What the corruptor did, plus the exact lenient-ingest outcome the
/// corrupted text must produce. The expectations are computed by
/// re-decoding every emitted line with `LineCodec`, so a quarantine-mode
/// `DecodeAll` over the output is guaranteed to report identical counts —
/// tests assert injected == reported per error class.
struct CorruptionReport {
  size_t lines_total = 0;      ///< non-blank input lines
  size_t lines_corrupted = 0;  ///< input lines selected for corruption
  std::array<size_t, kNumCorruptionKinds> by_kind{};

  // Expected quarantine-mode ingest outcome on the corrupted text.
  size_t expected_records = 0;      ///< lines that still decode
  size_t expected_quarantined = 0;  ///< lines lenient ingest must skip
  std::array<size_t, kNumIngestErrorClasses> expected_by_class{};

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Corrupts a clean line-format corpus deterministically: given the same
/// text, config and Rng seed, the output is byte-identical. At rate 0
/// the output equals the input byte for byte (blank lines and trailing
/// newline structure are preserved in every case). Lines that fail to
/// decode *before* corruption are never selected (the corruptor refuses
/// to double-corrupt; feed it clean corpora). `report` is optional.
std::string CorruptCorpusText(std::string_view clean_text,
                              const CorruptorConfig& config, Rng* rng,
                              CorruptionReport* report = nullptr);

/// File-to-file convenience wrapper around `CorruptCorpusText`.
Status CorruptCorpusFile(const std::string& input_path,
                         const std::string& output_path,
                         const CorruptorConfig& config, Rng* rng,
                         CorruptionReport* report = nullptr);

/// Faults specific to the *binary columnar* corpus format
/// (log/columnar.h). Text corpora degrade line by line; a columnar file
/// is one CRC-protected container, so its failure contract is all or
/// nothing: every kind here must turn a later read into a ParseError —
/// never silently wrong records. Tests assert exactly that (the
/// detection guarantee), not partial recovery.
enum class ColumnarFaultKind {
  /// Bytes flipped inside the dictionary section ("cdict") — interned
  /// source/host/user names damaged at rest.
  kCorruptDictionaryEntry = 0,
  /// The file cut short inside a column section — a partial write that
  /// somehow bypassed the atomic-rename discipline, or media truncation.
  kTruncatedColumnBlock,
};
inline constexpr size_t kNumColumnarFaultKinds = 2;

/// Stable human-readable name (e.g. "CorruptDictionaryEntry").
std::string_view ColumnarFaultKindName(ColumnarFaultKind kind);

/// Where a columnar fault landed.
struct ColumnarFaultReport {
  ColumnarFaultKind kind = ColumnarFaultKind::kCorruptDictionaryEntry;
  size_t offset = 0;          ///< first damaged byte in the file
  size_t bytes_affected = 0;  ///< flipped span, or bytes cut off the tail
};

/// Injects one fault of `kind` into an encoded columnar corpus,
/// deterministically in the Rng. InvalidArgument when `clean_bytes` is
/// not a parseable columnar container (the corruptor refuses to
/// double-corrupt, mirroring `CorruptCorpusText`) or lacks the section
/// the kind targets.
Result<std::string> CorruptColumnarBytes(std::string_view clean_bytes,
                                         ColumnarFaultKind kind, Rng* rng,
                                         ColumnarFaultReport* report = nullptr);

/// File-to-file convenience wrapper around `CorruptColumnarBytes`.
Status CorruptColumnarFile(const std::string& input_path,
                           const std::string& output_path,
                           ColumnarFaultKind kind, Rng* rng,
                           ColumnarFaultReport* report = nullptr);

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_CORRUPTOR_H_
