#ifndef LOGMINE_SIMULATION_TOPOLOGY_H_
#define LOGMINE_SIMULATION_TOPOLOGY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "simulation/directory.h"
#include "util/result.h"

namespace logmine::sim {

/// Architectural tier of an application; determines logging behaviour,
/// hosting and how it participates in workload.
enum class Tier {
  kClient,       ///< GUI / lightweight client, runs on user workstations
  kService,      ///< mid-tier HTTP/XML service
  kBackend,      ///< database-ish backend
  kDaemon,       ///< batch / background job, no user interaction
  kIntegration,  ///< third-party system bridged into the landscape
};

std::string_view TierName(Tier tier);

/// Message-template family an application's developer happened to use for
/// invocation logs (the paper: "the way of doing this is not
/// standardized").
enum class InvocationLogStyle {
  kBracketedServer,  ///< Invoke externalService [fct [f] server [url]]
  kParenGroup,       ///< (GROUPID) fct( $params )
  kProseCall,        ///< calling GROUPID.fct for patient NNN
  kArrowUrl,         ///< -> url http://host/group/fct id=NNN
  kKeyValue,         ///< remote call fct=f grp=GROUPID rc=0
};

inline constexpr int kNumInvocationLogStyles = 5;

/// A component of the landscape (an application or module — a log source).
struct Application {
  std::string name;
  Tier tier = Tier::kService;
  /// Directory entries this application *provides* (indices into the
  /// ServiceDirectory); empty for clients/daemons.
  std::vector<int> provided_entries;
  /// Background (non-interaction) logging intensity, logs/hour at load 1.
  double background_rate_per_hour = 10.0;
  /// Template family used for invocation logs.
  InvocationLogStyle invocation_style = InvocationLogStyle::kBracketedServer;
  /// Probability that an invocation is logged by the caller at all
  /// (defect "7 interactions are not logged" is modelled per-edge below;
  /// this is the per-log flakiness within a logged edge).
  double invocation_log_prob = 0.95;
  /// True when the app logs calls it *receives*, citing its own service
  /// group — the source of inverted dependencies in L3.
  bool logs_server_side = false;
  /// Index into the server-side template family table (defines which stop
  /// pattern, if any, matches this app's receive logs).
  int server_side_style = 0;
  /// True for applications only used during office days (billing,
  /// admission, planning): their use cases never run on weekends, which
  /// produces the weekend dip in realized dependencies (§4.9).
  bool weekday_only = false;
  /// True for the round-the-clock care clients (triage, nursing, the
  /// CPR viewers): the only interactive workload during night hours.
  bool night_active = false;
  /// Host the app runs on ("ws-*" placeholders for clients are replaced
  /// by the workstation executing the session).
  std::string host;
  /// True when the host clock is NT-domain synced (skew up to ~1 s);
  /// false for NTP-synced Unix servers (skew < 1 ms).
  bool nt_clock = false;
  /// Directory entries whose ids this app occasionally emits as ordinary
  /// free-text data (patient names, billing items) — coincidental
  /// citations that become L3 false positives.
  std::vector<int> coincidence_entries;
};

/// A directed invocation relationship between two applications.
struct InvocationEdge {
  int caller = 0;  ///< index into Topology::apps
  int callee = 0;
  /// Directory entry cited when the caller logs the call, usually the
  /// callee's primary provided entry; -1 when the callee provides none.
  int cited_entry = -1;
  /// The entry the caller *actually* depends on (ground truth), normally
  /// == cited_entry. The defect catalog makes them diverge.
  int true_entry = -1;
  bool asynchronous = false;  ///< notification-style, decoupled in time
  bool logged_by_caller = true;  ///< defect: some interactions never logged
  /// When non-empty, the caller cites this literal (possibly stale or
  /// erroneous) id instead of the directory entry's id.
  std::string miscited_id;
  /// Relative frequency multiplier; ~0 for the "used extremely seldom"
  /// edges of the paper's false-negative analysis.
  double weight = 1.0;
  /// When >= 0, failures of this call make the caller log an exception
  /// stack trace citing this *deeper* entry (returned through the callee)
  /// — the transitive false positives of §4.8.
  int exception_deep_entry = -1;
  /// Probability that one execution of this edge fails and produces the
  /// exception log above.
  double failure_prob = 0.0;
  /// Lifecycle of the interaction in simulated days (inclusive bounds):
  /// the "moving landscape" — integrations appear and are decommissioned
  /// while the study runs.
  int active_from_day = 0;
  int active_until_day = 1 << 29;
};

/// A node of a use-case call tree: execute `edge`, then the nested calls
/// the callee makes while handling it.
struct CallStep {
  int edge = 0;  ///< index into Topology::edges
  std::vector<CallStep> children;
};

/// A user-visible unit of work (one "click"): the root application
/// performs `steps` in order.
struct UseCase {
  std::string name;
  int root_app = 0;
  std::vector<CallStep> steps;
  double weight = 1.0;  ///< relative selection frequency
};

/// The complete landscape: applications, invocation edges, and the
/// use cases that realize the edges at runtime.
class Topology {
 public:
  std::vector<Application> apps;
  std::vector<InvocationEdge> edges;
  std::vector<UseCase> use_cases;          ///< client-rooted (sessions)
  std::vector<UseCase> batch_use_cases;    ///< daemon-rooted (background)

  int FindApp(std::string_view name) const;  ///< -1 when absent

  /// Ground truth for L1/L2 evaluation: unordered pairs of directly
  /// interacting application names (the paper's first reference model).
  std::set<std::pair<std::string, std::string>> InteractionPairs() const;

  /// Ground truth for L3 evaluation: (application name, directory entry
  /// id) pairs, using the *true* entry of each edge (the paper's second
  /// reference model).
  std::set<std::pair<std::string, std::string>> AppServiceDeps(
      const ServiceDirectory& directory) const;

  /// Sanity checks: edge endpoints valid, entries within directory range,
  /// use-case trees reference existing edges with matching roots.
  Status Validate(const ServiceDirectory& directory) const;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_TOPOLOGY_H_
