#include "simulation/defects.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "simulation/message_render.h"

namespace logmine::sim {
namespace {

// Edges eligible to host a defect: a real, normally-weighted, logged call
// citing a directory entry, with no defect applied yet.
std::vector<int> CandidateEdges(const Topology& topology,
                                const std::set<int>& used) {
  std::vector<int> out;
  for (size_t i = 0; i < topology.edges.size(); ++i) {
    const InvocationEdge& e = topology.edges[i];
    if (used.count(static_cast<int>(i))) continue;
    if (e.cited_entry < 0 || !e.logged_by_caller) continue;
    if (!e.miscited_id.empty() || e.exception_deep_entry >= 0) continue;
    if (e.weight < 0.5) continue;
    out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace

Status ApplyDefects(const DefectCatalog& catalog,
                    const ServiceDirectory& directory, Rng* rng,
                    Topology* topology, AppliedDefects* applied) {
  *applied = AppliedDefects{};
  std::set<int> used_edges;
  Rng local = rng->Fork("defects");

  // --- unlogged edges, concentrated on few caller apps --------------------
  {
    std::vector<int> candidates = CandidateEdges(*topology, used_edges);
    // Group candidates by caller and prefer callers with many out-edges so
    // the defect concentrates on ~4 apps, as in the paper.
    std::map<int, std::vector<int>> by_caller;
    for (int e : candidates) {
      by_caller[topology->edges[static_cast<size_t>(e)].caller].push_back(e);
    }
    std::vector<std::pair<int, std::vector<int>>> callers(by_caller.begin(),
                                                          by_caller.end());
    std::stable_sort(callers.begin(), callers.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.size() > b.second.size();
                     });
    int remaining = catalog.unlogged_edges;
    std::set<int> caller_apps;
    for (const auto& [caller, edges] : callers) {
      if (remaining <= 0) break;
      for (int e : edges) {
        if (remaining <= 0) break;
        topology->edges[static_cast<size_t>(e)].logged_by_caller = false;
        used_edges.insert(e);
        applied->unlogged_edges.push_back(e);
        caller_apps.insert(caller);
        --remaining;
      }
    }
    if (remaining > 0) {
      return Status::FailedPrecondition(
          "not enough candidate edges for unlogged-edge defects");
    }
    applied->apps_with_unlogged_invocations.assign(caller_apps.begin(),
                                                   caller_apps.end());
  }

  // --- wrong (stale) names -------------------------------------------------
  {
    std::vector<int> candidates = CandidateEdges(*topology, used_edges);
    local.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) < catalog.wrong_name_edges) {
      return Status::FailedPrecondition(
          "not enough candidate edges for wrong-name defects");
    }
    for (int i = 0; i < catalog.wrong_name_edges; ++i) {
      const int e = candidates[static_cast<size_t>(i)];
      InvocationEdge& edge = topology->edges[static_cast<size_t>(e)];
      const std::string& real_id =
          directory.entry(static_cast<size_t>(edge.cited_entry)).id;
      // Derive a stale variant of the id, e.g. "UPSRV2" logged as "UPSRV".
      std::string stale = real_id;
      if (!stale.empty() && std::isdigit(static_cast<unsigned char>(
                                stale.back()))) {
        stale.pop_back();
      } else {
        stale += "0";
      }
      while (directory.FindById(stale).ok()) stale += "X";
      edge.miscited_id = stale;
      used_edges.insert(e);
      applied->wrong_name_edges.push_back(e);
    }
  }

  // --- erroneous but valid ids ---------------------------------------------
  {
    std::vector<int> candidates = CandidateEdges(*topology, used_edges);
    local.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) < catalog.erroneous_id_edges) {
      return Status::FailedPrecondition(
          "not enough candidate edges for erroneous-id defects");
    }
    for (int i = 0; i < catalog.erroneous_id_edges; ++i) {
      const int e = candidates[static_cast<size_t>(i)];
      InvocationEdge& edge = topology->edges[static_cast<size_t>(e)];
      // Cite a different, valid entry while the true dependency stays.
      int other = edge.cited_entry;
      while (other == edge.cited_entry) {
        other = static_cast<int>(
            local.UniformInt(0, static_cast<int64_t>(directory.size()) - 1));
      }
      edge.cited_entry = other;
      used_edges.insert(e);
      applied->erroneous_id_edges.push_back(e);
    }
  }

  // --- server-side loggers ---------------------------------------------------
  {
    std::vector<int> providers;
    for (size_t i = 0; i < topology->apps.size(); ++i) {
      if (!topology->apps[i].provided_entries.empty()) {
        providers.push_back(static_cast<int>(i));
      }
    }
    local.Shuffle(&providers);
    if (static_cast<int>(providers.size()) < catalog.server_side_loggers) {
      return Status::FailedPrecondition(
          "not enough provider apps for server-side loggers");
    }
    for (int i = 0; i < catalog.server_side_loggers; ++i) {
      Application& app =
          topology->apps[static_cast<size_t>(providers[static_cast<size_t>(i)])];
      app.logs_server_side = true;
      if (i < catalog.uncovered_server_side_loggers) {
        app.server_side_style = kNumServerSideStyles - 1;  // no stop pattern
        applied->uncovered_server_side_apps.push_back(
            providers[static_cast<size_t>(i)]);
      } else {
        app.server_side_style = i % (kNumServerSideStyles - 1);
      }
      applied->server_side_apps.push_back(providers[static_cast<size_t>(i)]);
    }
  }

  // --- exception stack-trace leaks -------------------------------------------
  {
    std::vector<int> candidates;
    for (int e : CandidateEdges(*topology, used_edges)) {
      const InvocationEdge& edge = topology->edges[static_cast<size_t>(e)];
      // Need a deeper edge callee -> D where D provides an entry different
      // from the one this edge cites.
      for (const InvocationEdge& deeper : topology->edges) {
        if (deeper.caller != edge.callee || deeper.true_entry < 0) continue;
        if (deeper.true_entry == edge.cited_entry) continue;
        candidates.push_back(e);
        break;
      }
    }
    local.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) < catalog.exception_edges) {
      return Status::FailedPrecondition(
          "not enough two-hop chains for exception defects");
    }
    for (int i = 0; i < catalog.exception_edges; ++i) {
      const int e = candidates[static_cast<size_t>(i)];
      InvocationEdge& edge = topology->edges[static_cast<size_t>(e)];
      for (const InvocationEdge& deeper : topology->edges) {
        if (deeper.caller == edge.callee && deeper.true_entry >= 0 &&
            deeper.true_entry != edge.cited_entry) {
          edge.exception_deep_entry = deeper.true_entry;
          break;
        }
      }
      edge.failure_prob = 0.05;
      used_edges.insert(e);
      applied->exception_edges.push_back(e);
    }
  }

  // --- coincidental citations -------------------------------------------------
  {
    const auto true_deps = topology->AppServiceDeps(directory);
    std::vector<std::pair<int, int>> candidates;
    for (size_t a = 0; a < topology->apps.size(); ++a) {
      const Application& app = topology->apps[a];
      if (app.tier != Tier::kClient && app.tier != Tier::kService) continue;
      for (size_t s = 0; s < directory.size(); ++s) {
        if (!true_deps.count({app.name, directory.entry(s).id})) {
          candidates.emplace_back(static_cast<int>(a), static_cast<int>(s));
        }
      }
    }
    local.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) < catalog.coincidence_pairs) {
      return Status::FailedPrecondition(
          "not enough (app, entry) pairs for coincidence defects");
    }
    std::set<int> apps_seen;
    int taken = 0;
    for (const auto& [a, s] : candidates) {
      if (taken >= catalog.coincidence_pairs) break;
      if (apps_seen.count(a)) continue;  // spread across apps
      topology->apps[static_cast<size_t>(a)].coincidence_entries.push_back(s);
      applied->coincidences.emplace_back(a, s);
      apps_seen.insert(a);
      ++taken;
    }
    // If spreading failed to reach the count, allow repeats.
    for (const auto& [a, s] : candidates) {
      if (taken >= catalog.coincidence_pairs) break;
      auto& existing =
          topology->apps[static_cast<size_t>(a)].coincidence_entries;
      if (std::find(existing.begin(), existing.end(), s) != existing.end()) {
        continue;
      }
      existing.push_back(s);
      applied->coincidences.emplace_back(a, s);
      ++taken;
    }
  }

  // --- rarely used edges --------------------------------------------------------
  {
    std::vector<int> candidates = CandidateEdges(*topology, used_edges);
    local.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) < catalog.rare_edges) {
      return Status::FailedPrecondition(
          "not enough candidate edges for rare-edge defects");
    }
    for (int i = 0; i < catalog.rare_edges; ++i) {
      const int e = candidates[static_cast<size_t>(i)];
      // "Used extremely seldom": expected well below one realization per
      // simulated week, so most weeks these never take place.
      topology->edges[static_cast<size_t>(e)].weight = 0.001;
      used_edges.insert(e);
      applied->rare_edges.push_back(e);
    }
  }

  return Status::OK();
}

}  // namespace logmine::sim
