#ifndef LOGMINE_SIMULATION_SERVICE_FAULTS_H_
#define LOGMINE_SIMULATION_SERVICE_FAULTS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace logmine::sim {

// ---------------------------------------------------------------------------
// Service fault plans: the chaos axis of the streaming mining service
// (src/serve). Where shard fault plans misbehave batch-sweep shards,
// a service fault plan misbehaves the *online* path — submissions,
// ingest steps, publishes and queries — so the service's load-shedding,
// health-degradation and crash-recovery machinery can be driven
// deterministically from a single seed.

/// What a faulted service event does.
enum class ServiceFault : uint32_t {
  kNone = 0,
  /// The miner makes no progress on this epoch for the spec's first
  /// `times` Step() attempts: the batch stays queued, staleness grows,
  /// and the bounded queue backs up behind it. Exercises the
  /// degraded/stale health ladder and load shedding.
  kStallEpoch,
  /// The batch arrives undecodable/inconsistent: ingest must quarantine
  /// it (count + drop) and keep serving the previous generation.
  kPoisonBatch,
  /// The upstream feed replays an already-ingested hour (its clock ran
  /// backwards): submission must reject it without disturbing the
  /// window.
  kClockRegression,
  /// The consumer of this query is slow: the query path busy-waits
  /// `slow_ms` cooperatively, so a per-query deadline/cancel trips
  /// deterministically. Keyed by query index, not epoch.
  kSlowConsumer,
  /// The process dies after persisting streaming state, before the
  /// in-memory generation swap — the torn-publish instant. Recovery
  /// must resume byte-identically from the persisted snapshot.
  kCrashMidPublish,
};

/// Stable name used in flags and test output (e.g. "stall-epoch").
std::string_view ServiceFaultName(ServiceFault fault);

/// Parses the result of ServiceFaultName back; InvalidArgument otherwise.
Result<ServiceFault> ServiceFaultFromName(std::string_view name);

/// One misbehaving service event. `index` counts submitted epoch
/// batches (0-based, in submission order) for the epoch-scoped faults,
/// and served queries for kSlowConsumer. Epoch-scoped faults fire on
/// the first `times` attempts at that event, then clear.
struct ServiceFaultSpec {
  int64_t index = 0;
  ServiceFault fault = ServiceFault::kNone;
  int times = 1;
  /// Cooperative wait of a kSlowConsumer query, in milliseconds.
  int64_t slow_ms = 50;
};

/// A full chaos scenario: at most one spec per (fault scope, index).
struct ServiceFaultPlan {
  std::vector<ServiceFaultSpec> faults;
};

/// Knobs of RandomServiceFaultPlan.
struct ServiceFaultPlanOptions {
  /// Upper bound on drawn faults; the draw may produce fewer when two
  /// land on the same index (later ones are dropped).
  int max_faults = 3;
  /// Stall durations are drawn from [1, max_stall_steps].
  int max_stall_steps = 3;
  int64_t slow_ms = 50;
};

/// Draws a random scenario over `num_epochs` submissions and
/// `num_queries` queries — all randomness from the caller's seeded Rng,
/// so a chaos sweep over seeds is exactly reproducible.
ServiceFaultPlan RandomServiceFaultPlan(Rng* rng, int64_t num_epochs,
                                        int64_t num_queries,
                                        const ServiceFaultPlanOptions& options);

/// Looks up the armed plan. Stateless on purpose: the verdict is a pure
/// function of (plan, event, attempt), so a service that crashes and is
/// rebuilt around the same injector replays the identical fault
/// schedule — attempt counting is the *service's* state, persisted and
/// recovered with everything else.
class ServiceFaultInjector {
 public:
  explicit ServiceFaultInjector(ServiceFaultPlan plan);

  /// Fault for the `attempt`-th (1-based) processing attempt of the
  /// `index`-th submitted epoch batch. Epoch-scoped faults only;
  /// kSlowConsumer specs never match here.
  ServiceFault OnEpoch(int64_t index, int attempt) const;

  /// Fault for the `index`-th served query (kSlowConsumer only).
  ServiceFault OnQuery(int64_t index) const;

  /// The armed spec for an event index, or nullptr.
  const ServiceFaultSpec* SpecFor(int64_t index, ServiceFault fault) const;

  const ServiceFaultPlan& plan() const { return plan_; }

  /// The status a crashed-mid-publish service returns — Internal,
  /// carrying the fault name, so tests can tell a simulated death from
  /// a real bug.
  static Status KilledStatus(int64_t index);

 private:
  ServiceFaultPlan plan_;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_SERVICE_FAULTS_H_
