#ifndef LOGMINE_SIMULATION_MESSAGE_RENDER_H_
#define LOGMINE_SIMULATION_MESSAGE_RENDER_H_

#include <string>
#include <string_view>

#include "simulation/topology.h"
#include "util/rng.h"

namespace logmine::sim {

/// Number of distinct server-side ("received call") template families.
/// Families 0..4 are matched by the default stop-pattern list; family 5
/// deliberately is not, producing the residual inverted dependencies the
/// paper reports even with stop patterns enabled.
inline constexpr int kNumServerSideStyles = 6;

/// Renders the free text a caller writes when invoking `fct` of service
/// group `cited_id` at `url`, in the given developer style. The citation
/// of the directory entry (by id or by URL containing the id) is what L3
/// mines.
std::string RenderInvocationMessage(InvocationLogStyle style,
                                    std::string_view fct,
                                    std::string_view cited_id,
                                    std::string_view url, Rng* rng);

/// Renders an ordinary processing log with no service citation (queries,
/// timings, cache chatter, ...).
std::string RenderProcessingMessage(std::string_view app_name, Rng* rng);

/// Renders the server-side log of a *received* call, citing the
/// provider's own group id — the source of inverted dependencies.
std::string RenderServerSideMessage(int style, std::string_view fct,
                                    std::string_view own_id,
                                    std::string_view caller_host, Rng* rng);

/// Renders an exception log that leaks a *transitive* citation: the
/// caller logs the stack trace returned by intermediary `via_id`, which
/// mentions the deeper service `deep_id`.
std::string RenderExceptionMessage(std::string_view via_id,
                                   std::string_view deep_id,
                                   std::string_view fct, Rng* rng);

/// Renders a log whose free text *coincidentally* contains `entry_id`
/// as ordinary data (the paper's example: a patient having the same name
/// as a service id).
std::string RenderCoincidenceMessage(std::string_view app_name,
                                     std::string_view entry_id, Rng* rng);

/// Renders the client-side log of a user action starting a use case.
std::string RenderUserActionMessage(std::string_view use_case_name, Rng* rng);

/// Renders background daemon/monitoring chatter.
std::string RenderBackgroundMessage(std::string_view app_name, Rng* rng);

/// Deterministically derives a plausible function name for a service
/// entry ("DPINOTIFICATION" -> "notify", generic ids -> verbs).
std::string FunctionNameFor(std::string_view entry_id, int variant);

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_MESSAGE_RENDER_H_
