#include "simulation/message_render.h"

#include <array>

#include "util/string_util.h"

namespace logmine::sim {
namespace {

constexpr std::array<std::string_view, 12> kVerbs = {
    "store", "fetch", "query", "publish", "notify", "validate",
    "submit", "list",  "merge", "resolve", "export", "sign"};

constexpr std::array<std::string_view, 10> kWards = {
    "cardiology", "pediatrics", "oncology",  "radiology", "surgery",
    "intensive",  "emergency",  "maternity", "geriatrics", "psychiatry"};

constexpr std::array<std::string_view, 8> kProcessingTemplates = {
    "request processed in %d ms",
    "query executed rows=%d",
    "cache refresh completed (%d entries)",
    "document rendered, size=%d bytes",
    "transaction committed seq=%d",
    "queue depth %d",
    "session state persisted (%d keys)",
    "validation finished, %d warnings",
};

constexpr std::array<std::string_view, 8> kBackgroundTemplates = {
    "heartbeat ok, uptime %d s",
    "scheduled scan: %d items checked",
    "gc cycle freed %d objects",
    "replica sync delta=%d",
    "metrics flushed (%d series)",
    "connection pool: %d idle",
    "index maintenance: %d pages",
    "watchdog tick %d",
};

std::string FormatCount(std::string_view tmpl, int64_t n) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), std::string(tmpl).c_str(),
                static_cast<int>(n));
  return buf;
}

}  // namespace

std::string RenderInvocationMessage(InvocationLogStyle style,
                                    std::string_view fct,
                                    std::string_view cited_id,
                                    std::string_view url, Rng* rng) {
  const int64_t id = rng->UniformInt(1000, 999999);
  std::string out;
  switch (style) {
    case InvocationLogStyle::kBracketedServer:
      out = "Invoke externalService [fct [" + std::string(fct) +
            "] server [" + std::string(url) + "]]";
      break;
    case InvocationLogStyle::kParenGroup:
      out = "(" + std::string(cited_id) + ") " + std::string(fct) +
            "( $params )";
      break;
    case InvocationLogStyle::kProseCall:
      out = "calling " + std::string(cited_id) + "." + std::string(fct) +
            " for patient " + std::to_string(id);
      break;
    case InvocationLogStyle::kArrowUrl:
      out = "-> url " + std::string(url) + "/" + std::string(fct) +
            " id=" + std::to_string(id);
      break;
    case InvocationLogStyle::kKeyValue:
      out = "remote call fct=" + std::string(fct) + " grp=" +
            std::string(cited_id) + " rc=0";
      break;
  }
  return out;
}

std::string RenderProcessingMessage(std::string_view app_name, Rng* rng) {
  const size_t pick = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(kProcessingTemplates.size()) - 1));
  (void)app_name;  // kept in the signature for per-app vocabularies later
  return FormatCount(kProcessingTemplates[pick], rng->UniformInt(1, 5000));
}

std::string RenderServerSideMessage(int style, std::string_view fct,
                                    std::string_view own_id,
                                    std::string_view caller_host, Rng* rng) {
  const int64_t n = rng->UniformInt(1, 9999);
  switch (style % kNumServerSideStyles) {
    case 0:
      return "Received call " + std::string(fct) + " from " +
             std::string(caller_host) + " (" + std::string(own_id) + ")";
    case 1:
      return "incoming request " + std::string(fct) + " (" +
             std::string(own_id) + ") client=" + std::string(caller_host);
    case 2:
      return "handling fct " + std::string(fct) + " for " +
             std::string(caller_host) + " grp " + std::string(own_id);
    case 3:
      return "serve " + std::string(own_id) + "." + std::string(fct) +
             " <- " + std::string(caller_host);
    case 4:
      return "request dispatched to worker: " + std::string(own_id) + "/" +
             std::string(fct) + " job=" + std::to_string(n);
    default:
      // Style 5: an idiosyncratic format the stop-pattern list misses.
      return "EXEC " + std::string(fct) + " caller=" +
             std::string(caller_host) + " group=" + std::string(own_id);
  }
}

std::string RenderExceptionMessage(std::string_view via_id,
                                   std::string_view deep_id,
                                   std::string_view fct, Rng* rng) {
  const int64_t line = rng->UniformInt(20, 900);
  return "ERROR remote fault returned by " + std::string(via_id) +
         ": unhandled exception\\n at " + std::string(deep_id) + "." +
         std::string(fct) + "(request.c:" + std::to_string(line) +
         ")\\n at dispatcher.invoke";
}

std::string RenderCoincidenceMessage(std::string_view app_name,
                                     std::string_view entry_id, Rng* rng) {
  (void)app_name;
  const int64_t pid = rng->UniformInt(100000, 999999);
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return "admission of patient " + std::string(entry_id) + " M. (pid " +
             std::to_string(pid) + ")";
    case 1:
      return "updated record for " + std::string(entry_id) +
             ", ward transferred";
    default:
      return "billing item '" + std::string(entry_id) + "' priced";
  }
}

std::string RenderUserActionMessage(std::string_view use_case_name,
                                    Rng* rng) {
  const size_t ward = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(kWards.size()) - 1));
  return "user action: " + std::string(use_case_name) + " [" +
         std::string(kWards[ward]) + "]";
}

std::string RenderBackgroundMessage(std::string_view app_name, Rng* rng) {
  const size_t pick = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(kBackgroundTemplates.size()) - 1));
  (void)app_name;
  return FormatCount(kBackgroundTemplates[pick], rng->UniformInt(1, 100000));
}

std::string FunctionNameFor(std::string_view entry_id, int variant) {
  // Hash the id to a stable verb, offset by `variant` for multi-function
  // groups.
  uint64_t h = 1469598103934665603ULL;
  for (char c : entry_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  const size_t idx =
      static_cast<size_t>((h + static_cast<uint64_t>(variant)) % kVerbs.size());
  return std::string(kVerbs[idx]);
}

}  // namespace logmine::sim
