#include "simulation/hug_scenario.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "simulation/message_render.h"
#include "simulation/workload.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace logmine::sim {
namespace {

struct AppSpec {
  std::string_view name;
  Tier tier;
};

// 12 clients, 26 services, 8 backends, 4 integration bridges, 4 daemons.
constexpr std::array<AppSpec, 54> kApps = {{
    {"DPIFormidoc", Tier::kClient},
    {"DPIViewer", Tier::kClient},
    {"DPIOrders", Tier::kClient},
    {"LabConsole", Tier::kClient},
    {"RadViewer", Tier::kClient},
    {"AdmissionDesk", Tier::kClient},
    {"PharmaDesk", Tier::kClient},
    {"NurseBoard", Tier::kClient},
    {"BillingDesk", Tier::kClient},
    {"ArchiveBrowser", Tier::kClient},
    {"PlanningTool", Tier::kClient},
    {"TriageClient", Tier::kClient},
    {"DPIPublication", Tier::kService},
    {"DPINotifier", Tier::kService},
    {"DPIBaseDoc", Tier::kService},
    {"DPIUserSrv", Tier::kService},
    {"LabResults", Tier::kService},
    {"LabOrders", Tier::kService},
    {"RadImaging", Tier::kService},
    {"RadReports", Tier::kService},
    {"AdmissionSrv", Tier::kService},
    {"PatientIndex", Tier::kService},
    {"BillingSrv", Tier::kService},
    {"PharmaStock", Tier::kService},
    {"Prescription", Tier::kService},
    {"VaccineSrv", Tier::kService},
    {"NutritionSrv", Tier::kService},
    {"PhysioSrv", Tier::kService},
    {"EpidemioSrv", Tier::kService},
    {"ResourceMgr", Tier::kService},
    {"WardMgr", Tier::kService},
    {"TransportSrv", Tier::kService},
    {"AlertSrv", Tier::kService},
    {"AuditSrv", Tier::kService},
    {"DocTemplates", Tier::kService},
    {"TermServer", Tier::kService},
    {"StatsSrv", Tier::kService},
    {"ExportSrv", Tier::kService},
    {"PatientDB", Tier::kBackend},
    {"DocStore", Tier::kBackend},
    {"LabDB", Tier::kBackend},
    {"ImageArchive", Tier::kBackend},
    {"BillingDB", Tier::kBackend},
    {"HRDB", Tier::kBackend},
    {"ConfigDB", Tier::kBackend},
    {"ArchiveDB", Tier::kBackend},
    {"RISGateway", Tier::kIntegration},
    {"ICUBridge", Tier::kIntegration},
    {"InsuranceLink", Tier::kIntegration},
    {"StateRegistry", Tier::kIntegration},
    {"NightBatch", Tier::kDaemon},
    {"ReplicaSync", Tier::kDaemon},
    {"PurgeDaemon", Tier::kDaemon},
    {"StatsCollector", Tier::kDaemon},
}};

// Primary directory ids for the 26 services (aligned with kApps order),
// including the paper's "UPSRV2" (the newer version of DPIUserSrv whose
// stale name "UPSRV" shows up in the wrong-name defect).
constexpr std::array<std::string_view, 26> kServiceEntryIds = {
    "DPIPUBLICATION", "DPINOTIFICATION", "DPIBASEDOC", "UPSRV2",
    "LABRES",         "LABORD",          "RADIMG",     "RADREP",
    "ADMSRV",         "PATIDX",          "BILLSRV",    "PHARMSTK",
    "PRESCR",         "VACSRV",          "NUTRSRV",    "PHYSSRV",
    "EPIDSRV",        "RESMGR",          "WARDMGR",    "TRANSPSRV",
    "ALERTSRV",       "AUDITSRV",        "DOCTPL",     "TERMSRV",
    "STATSRV",        "EXPSRV"};

constexpr std::array<std::string_view, 8> kBackendEntryIds = {
    "PATDB", "DOCSTORE", "LABDB", "IMGARCH",
    "BILLDB", "HRDB",    "CONFDB", "ARCHDB"};

// Eight services also expose a second-generation API group (v3 suffix to
// avoid colliding with the wrong-name derivation that strips a digit).
constexpr std::array<int, 8> kV2Services = {2, 4, 6, 9, 10, 22, 20, 25};

constexpr std::array<std::string_view, 5> kIntegrationEntryIds = {
    "RISGW", "ICUBRIDGE", "INSLINK", "STATEREG", "STATEREG2"};

std::string HostName(int index, bool nt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), nt ? "ntsrv%02d.hug.ch" : "srv%02d.hug.ch",
                index);
  return buf;
}

// Adds an edge unless the (caller, callee) pair already exists in either
// direction; returns the edge index or -1.
int AddEdge(Topology* topology,
            std::set<std::pair<int, int>>* pairs, int caller, int callee,
            int entry, double weight, bool asynchronous) {
  if (caller == callee) return -1;
  const auto key = std::minmax(caller, callee);
  if (pairs->count({key.first, key.second})) return -1;
  pairs->insert({key.first, key.second});
  InvocationEdge edge;
  edge.caller = caller;
  edge.callee = callee;
  edge.cited_entry = entry;
  edge.true_entry = entry;
  edge.weight = weight;
  edge.asynchronous = asynchronous;
  topology->edges.push_back(edge);
  return static_cast<int>(topology->edges.size()) - 1;
}

// Picks the entry a caller cites for `callee` (primary, or occasionally
// the v2 group if one exists).
int CitedEntryFor(const Application& callee, Rng* rng) {
  if (callee.provided_entries.empty()) return -1;
  if (callee.provided_entries.size() > 1 && rng->Bernoulli(0.35)) {
    return callee.provided_entries[1];
  }
  return callee.provided_entries[0];
}

// Recursively expands the call tree below `edge_index`: each out-edge of
// the callee may appear as a nested call, with probability proportional
// to its weight and decaying with depth.
CallStep ExpandStep(const Topology& topology,
                    const std::map<int, std::vector<int>>& out_edges,
                    int edge_index, int depth, Rng* rng) {
  CallStep step;
  step.edge = edge_index;
  if (depth >= 2) return step;
  const int callee = topology.edges[static_cast<size_t>(edge_index)].callee;
  auto it = out_edges.find(callee);
  if (it == out_edges.end()) return step;
  for (int child : it->second) {
    const InvocationEdge& edge = topology.edges[static_cast<size_t>(child)];
    const double base = depth == 0 ? 0.55 : 0.30;
    const double prob = std::min(0.9, base * edge.weight);
    if (rng->Bernoulli(prob)) {
      step.children.push_back(
          ExpandStep(topology, out_edges, child, depth + 1, rng));
    }
  }
  return step;
}

}  // namespace

Result<HugScenario> BuildHugScenario(const HugScenarioConfig& config) {
  HugScenario scenario;
  Topology& topology = scenario.topology;
  ServiceDirectory& directory = scenario.directory;
  Rng rng(config.seed);
  Rng topo_rng = rng.Fork("topology");

  // ---- applications -------------------------------------------------------
  int host_counter = 0;
  for (size_t i = 0; i < kApps.size(); ++i) {
    Application app;
    app.name = std::string(kApps[i].name);
    app.tier = kApps[i].tier;
    app.invocation_style = static_cast<InvocationLogStyle>(
        i % static_cast<size_t>(kNumInvocationLogStyles));
    app.invocation_log_prob = topo_rng.Uniform(0.85, 1.0);
    switch (app.tier) {
      case Tier::kClient:
        app.background_rate_per_hour = topo_rng.Uniform(10, 30);
        app.host = "";  // set per session (workstations)
        app.nt_clock = true;
        break;
      case Tier::kService:
        app.background_rate_per_hour = topo_rng.Uniform(60, 140);
        app.nt_clock = topo_rng.Bernoulli(0.3);
        app.host = HostName(host_counter++, app.nt_clock);
        break;
      case Tier::kBackend:
        app.background_rate_per_hour = topo_rng.Uniform(100, 200);
        app.nt_clock = false;
        app.host = HostName(host_counter++, false);
        break;
      case Tier::kIntegration:
        app.background_rate_per_hour = topo_rng.Uniform(40, 120);
        app.nt_clock = topo_rng.Bernoulli(0.5);
        app.host = HostName(host_counter++, app.nt_clock);
        break;
      case Tier::kDaemon:
        app.background_rate_per_hour = topo_rng.Uniform(80, 160);
        app.nt_clock = false;
        app.host = HostName(host_counter++, false);
        break;
    }
    topology.apps.push_back(std::move(app));
  }
  const int kFirstService = 12;
  const int kFirstBackend = 38;
  const int kFirstIntegration = 46;
  const int kFirstDaemon = 50;
  // Administrative clients are idle on weekends.
  for (int office : {5 /*AdmissionDesk*/, 8 /*BillingDesk*/,
                     9 /*ArchiveBrowser*/, 10 /*PlanningTool*/}) {
    topology.apps[static_cast<size_t>(office)].weekday_only = true;
  }
  // Care clients run around the clock; everything else sleeps at night.
  for (int care : {0 /*DPIFormidoc*/, 1 /*DPIViewer*/, 3 /*LabConsole*/,
                   7 /*NurseBoard*/, 11 /*TriageClient*/}) {
    topology.apps[static_cast<size_t>(care)].night_active = true;
  }

  // ---- service directory ---------------------------------------------------
  auto add_entry = [&](std::string_view id, int owner_app) -> Status {
    ServiceEntry entry;
    entry.id = std::string(id);
    const Application& owner =
        topology.apps[static_cast<size_t>(owner_app)];
    entry.server_host = owner.host;
    entry.root_url =
        "http://" + owner.host + ":9980/" + ToLower(id);
    entry.num_replicas = 1 + static_cast<int>(topo_rng.UniformInt(0, 2));
    LOGMINE_RETURN_IF_ERROR(directory.Add(entry));
    topology.apps[static_cast<size_t>(owner_app)].provided_entries.push_back(
        static_cast<int>(directory.size()) - 1);
    return Status::OK();
  };
  for (size_t s = 0; s < kServiceEntryIds.size(); ++s) {
    LOGMINE_RETURN_IF_ERROR(
        add_entry(kServiceEntryIds[s], kFirstService + static_cast<int>(s)));
  }
  for (size_t b = 0; b < kBackendEntryIds.size(); ++b) {
    LOGMINE_RETURN_IF_ERROR(
        add_entry(kBackendEntryIds[b], kFirstBackend + static_cast<int>(b)));
  }
  for (int v2 : kV2Services) {
    const std::string id = std::string(kServiceEntryIds[static_cast<size_t>(v2)]) + "3";
    LOGMINE_RETURN_IF_ERROR(add_entry(id, kFirstService + v2));
  }
  for (size_t g = 0; g < kIntegrationEntryIds.size(); ++g) {
    const int owner =
        kFirstIntegration + std::min<int>(static_cast<int>(g), 3);
    LOGMINE_RETURN_IF_ERROR(add_entry(kIntegrationEntryIds[g], owner));
  }
  if (directory.size() != 47) {
    return Status::Internal("directory construction mismatch: " +
                            std::to_string(directory.size()));
  }

  // ---- invocation edges ------------------------------------------------------
  std::set<std::pair<int, int>> pair_guard;
  // The paper's running illustration: DPIFormidoc publishes medical
  // documents through DPIPublication — guaranteed, heavy edge.
  AddEdge(&topology, &pair_guard, /*caller=*/0, kFirstService,
          CitedEntryFor(topology.apps[static_cast<size_t>(kFirstService)],
                        &topo_rng),
          9.0, false);
  // Clients call 6-10 services each.
  for (int c = 0; c < kFirstService; ++c) {
    const int fanout = static_cast<int>(topo_rng.UniformInt(6, 10));
    for (int k = 0; k < fanout; ++k) {
      const int callee = kFirstService + static_cast<int>(topo_rng.UniformInt(
                             0, 25));
      // Heavy-tailed popularity: a few workflows dominate the day, many
      // run only a handful of times — the regime in which co-occurrence
      // mining misses the tail.
      const double weight =
          std::clamp(LogNormal(0.5, 2.2, &topo_rng), 0.02, 40.0);
      AddEdge(&topology, &pair_guard, c, callee,
              CitedEntryFor(topology.apps[static_cast<size_t>(callee)],
                            &topo_rng),
              weight, false);
    }
  }
  // Services call 2-3 other services or backends; ~25% of the
  // service->service links are asynchronous notifications.
  for (int s = kFirstService; s < kFirstBackend; ++s) {
    const int fanout = static_cast<int>(topo_rng.UniformInt(2, 4));
    for (int k = 0; k < fanout; ++k) {
      int callee;
      if (topo_rng.Bernoulli(0.45)) {
        callee = kFirstBackend + static_cast<int>(topo_rng.UniformInt(0, 7));
      } else {
        callee = kFirstService + static_cast<int>(topo_rng.UniformInt(0, 25));
      }
      const bool is_async = topology.apps[static_cast<size_t>(callee)].tier ==
                                Tier::kService &&
                            topo_rng.Bernoulli(0.25);
      AddEdge(&topology, &pair_guard, s, callee,
              CitedEntryFor(topology.apps[static_cast<size_t>(callee)],
                            &topo_rng),
              std::clamp(LogNormal(0.6, 1.5, &topo_rng), 0.03, 15.0),
              is_async);
    }
  }
  // Services <-> integration bridges.
  for (int g = kFirstIntegration; g < kFirstDaemon; ++g) {
    for (int k = 0; k < 2; ++k) {
      const int service =
          kFirstService + static_cast<int>(topo_rng.UniformInt(0, 25));
      AddEdge(&topology, &pair_guard, service, g,
              CitedEntryFor(topology.apps[static_cast<size_t>(g)], &topo_rng),
              topo_rng.Uniform(0.5, 1.2), topo_rng.Bernoulli(0.3));
    }
    const int target =
        kFirstService + static_cast<int>(topo_rng.UniformInt(0, 25));
    AddEdge(&topology, &pair_guard, g, target,
            CitedEntryFor(topology.apps[static_cast<size_t>(target)],
                          &topo_rng),
            topo_rng.Uniform(0.5, 1.0), false);
  }
  // Daemons sweep services/backends.
  for (int d = kFirstDaemon; d < 54; ++d) {
    const int fanout = static_cast<int>(topo_rng.UniformInt(2, 4));
    for (int k = 0; k < fanout; ++k) {
      const int callee =
          kFirstService + static_cast<int>(topo_rng.UniformInt(0, 33));
      AddEdge(&topology, &pair_guard, d, callee,
              CitedEntryFor(topology.apps[static_cast<size_t>(callee)],
                            &topo_rng),
              topo_rng.Uniform(0.5, 1.5), false);
    }
  }
  // Asynchronous notifications pushed to clients (no directory entry on
  // the callee side: visible to L1/L2 but outside the L3 model).
  for (int k = 0; k < 8; ++k) {
    const int notifier = kFirstService + 1;  // DPINotifier
    const int client = static_cast<int>(topo_rng.UniformInt(0, 11));
    AddEdge(&topology, &pair_guard, notifier, client, -1,
            topo_rng.Uniform(0.5, 1.0), true);
  }

  // ---- defects ------------------------------------------------------------------
  Rng defect_rng = rng.Fork("defects");
  LOGMINE_RETURN_IF_ERROR(ApplyDefects(config.defects, directory, &defect_rng,
                                       &topology, &scenario.defects));

  // ---- use cases -------------------------------------------------------------------
  Rng uc_rng = rng.Fork("usecases");
  std::map<int, std::vector<int>> out_edges;
  for (size_t e = 0; e < topology.edges.size(); ++e) {
    out_edges[topology.edges[e].caller].push_back(static_cast<int>(e));
  }
  int uc_counter = 0;
  auto next_name = [&uc_counter](std::string_view kind) {
    return std::string(kind) + "-" + std::to_string(uc_counter++);
  };

  for (int c = 0; c < kFirstService; ++c) {
    auto it = out_edges.find(c);
    if (it == out_edges.end()) continue;
    const std::vector<int>& edges = it->second;
    std::vector<int> normal_edges;
    for (int e : edges) {
      if (topology.edges[static_cast<size_t>(e)].weight < 0.01) {
        // Rare edge: its own, rarely selected use case.
        UseCase uc;
        uc.name = next_name("rare");
        uc.root_app = c;
        uc.steps.push_back(ExpandStep(topology, out_edges, e, 0, &uc_rng));
        uc.weight = topology.edges[static_cast<size_t>(e)].weight;
        topology.use_cases.push_back(std::move(uc));
      } else {
        normal_edges.push_back(e);
      }
    }
    for (int e : normal_edges) {
      // Primary use case around this edge.
      UseCase uc;
      uc.name = next_name("uc");
      uc.root_app = c;
      uc.steps.push_back(ExpandStep(topology, out_edges, e, 0, &uc_rng));
      uc.weight = topology.edges[static_cast<size_t>(e)].weight;
      topology.use_cases.push_back(std::move(uc));
      // A combined view: this edge plus another of the client's calls
      // (the paper's "creation of a view requires combining information
      // provided by different components").
      if (normal_edges.size() > 1 && uc_rng.Bernoulli(0.4)) {
        int other = e;
        while (other == e) {
          other = normal_edges[static_cast<size_t>(uc_rng.UniformInt(
              0, static_cast<int64_t>(normal_edges.size()) - 1))];
        }
        UseCase combo;
        combo.name = next_name("view");
        combo.root_app = c;
        combo.steps.push_back(ExpandStep(topology, out_edges, e, 0, &uc_rng));
        combo.steps.push_back(
            ExpandStep(topology, out_edges, other, 0, &uc_rng));
        combo.weight =
            0.5 * std::min(topology.edges[static_cast<size_t>(e)].weight,
                           topology.edges[static_cast<size_t>(other)].weight);
        topology.use_cases.push_back(std::move(combo));
      }
    }
  }

  // Batch/background use cases guarantee every non-rare edge of every
  // non-client app is realized.
  for (const auto& [app, edges] : out_edges) {
    if (topology.apps[static_cast<size_t>(app)].tier == Tier::kClient) {
      continue;
    }
    UseCase uc;
    uc.name = next_name("batch");
    uc.root_app = app;
    double weight_sum = 0;
    for (int e : edges) {
      if (topology.edges[static_cast<size_t>(e)].weight < 0.01) {
        UseCase rare;
        rare.name = next_name("rare-batch");
        rare.root_app = app;
        rare.steps.push_back(CallStep{e, {}});
        rare.weight = topology.edges[static_cast<size_t>(e)].weight;
        topology.batch_use_cases.push_back(std::move(rare));
        continue;
      }
      uc.steps.push_back(ExpandStep(topology, out_edges, e, 1, &uc_rng));
      weight_sum += topology.edges[static_cast<size_t>(e)].weight;
    }
    if (!uc.steps.empty()) {
      uc.weight = weight_sum / static_cast<double>(uc.steps.size());
      topology.batch_use_cases.push_back(std::move(uc));
    }
  }

  LOGMINE_RETURN_IF_ERROR(topology.Validate(directory));
  scenario.interaction_pairs = topology.InteractionPairs();
  scenario.app_service_deps = topology.AppServiceDeps(directory);
  return scenario;
}

}  // namespace logmine::sim
