#include "simulation/directory.h"

#include <cstdlib>

#include "util/string_util.h"

namespace logmine::sim {
namespace {

// Extracts the value of `attr="..."` from an element body; NotFound when
// the attribute is absent.
Result<std::string> Attribute(std::string_view element, std::string_view attr) {
  const std::string needle = std::string(attr) + "=\"";
  const size_t pos = element.find(needle);
  if (pos == std::string_view::npos) {
    return Status::NotFound("missing attribute: " + std::string(attr));
  }
  const size_t begin = pos + needle.size();
  const size_t end = element.find('"', begin);
  if (end == std::string_view::npos) {
    return Status::ParseError("unterminated attribute: " + std::string(attr));
  }
  return std::string(element.substr(begin, end - begin));
}

}  // namespace

Status ServiceDirectory::Add(ServiceEntry entry) {
  if (entry.id.empty()) {
    return Status::InvalidArgument("service entry with empty id");
  }
  if (FindById(entry.id).ok()) {
    return Status::AlreadyExists("duplicate service entry: " + entry.id);
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<size_t> ServiceDirectory::FindById(std::string_view id) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (EqualsIgnoreCase(entries_[i].id, id)) return i;
  }
  return Status::NotFound("no service entry: " + std::string(id));
}

std::string ServiceDirectory::ToXml() const {
  std::string out = "<directory>\n";
  for (const ServiceEntry& e : entries_) {
    out += "  <group id=\"" + e.id + "\" url=\"" + e.root_url +
           "\" server=\"" + e.server_host + "\" replicas=\"" +
           std::to_string(e.num_replicas) + "\"/>\n";
  }
  out += "</directory>\n";
  return out;
}

Result<ServiceDirectory> ServiceDirectory::FromXml(std::string_view xml) {
  ServiceDirectory dir;
  size_t pos = 0;
  bool saw_root = false;
  while (pos < xml.size()) {
    size_t open = xml.find('<', pos);
    if (open == std::string_view::npos) break;
    size_t close = xml.find('>', open);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated element");
    }
    std::string_view element = xml.substr(open + 1, close - open - 1);
    pos = close + 1;
    std::string_view trimmed = Trim(element);
    if (trimmed == "directory") {
      saw_root = true;
      continue;
    }
    if (trimmed == "/directory") continue;
    if (trimmed.substr(0, 5) == "group") {
      ServiceEntry entry;
      auto id = Attribute(trimmed, "id");
      if (!id.ok()) return id.status();
      entry.id = id.value();
      auto url = Attribute(trimmed, "url");
      if (!url.ok()) return url.status();
      entry.root_url = url.value();
      auto server = Attribute(trimmed, "server");
      if (!server.ok()) return server.status();
      entry.server_host = server.value();
      auto replicas = Attribute(trimmed, "replicas");
      if (!replicas.ok()) return replicas.status();
      entry.num_replicas = std::atoi(replicas.value().c_str());
      LOGMINE_RETURN_IF_ERROR(dir.Add(std::move(entry)));
      continue;
    }
    return Status::ParseError("unexpected element: <" + std::string(trimmed) +
                              ">");
  }
  if (!saw_root) return Status::ParseError("missing <directory> root");
  return dir;
}

}  // namespace logmine::sim
