#ifndef LOGMINE_SIMULATION_CLOCK_SKEW_H_
#define LOGMINE_SIMULATION_CLOCK_SKEW_H_

#include <cstdint>
#include <string_view>

#include "util/time_util.h"

namespace logmine::sim {

/// Deterministic per-host clock error model mirroring §4.2: Unix servers
/// are NTP-synced (deviation < 1 ms); Windows NT servers and client
/// workstations sync only within their NT domain and drift up to ~1 s.
/// The skew of a host is stable within a day and drifts day to day.
class ClockSkewModel {
 public:
  explicit ClockSkewModel(uint64_t seed) : seed_(seed) {}

  /// Milliseconds to *add* to the true time to obtain the host's clock
  /// reading on day `day_index`.
  TimeMs SkewFor(std::string_view host, bool nt_clock, int day_index) const;

  /// Extra latency between message creation and reception at the log
  /// server, modelling client-side buffering: batched flushes make the
  /// server timestamp unusable (hash-derived, 200 ms - 5 s).
  TimeMs BufferDelayFor(std::string_view host, TimeMs t) const;

 private:
  uint64_t seed_;
};

}  // namespace logmine::sim

#endif  // LOGMINE_SIMULATION_CLOCK_SKEW_H_
