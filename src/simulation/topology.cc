#include "simulation/topology.h"

#include <algorithm>

namespace logmine::sim {

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kClient:
      return "client";
    case Tier::kService:
      return "service";
    case Tier::kBackend:
      return "backend";
    case Tier::kDaemon:
      return "daemon";
    case Tier::kIntegration:
      return "integration";
  }
  return "service";
}

int Topology::FindApp(std::string_view name) const {
  for (size_t i = 0; i < apps.size(); ++i) {
    if (apps[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::set<std::pair<std::string, std::string>> Topology::InteractionPairs()
    const {
  std::set<std::pair<std::string, std::string>> out;
  for (const InvocationEdge& edge : edges) {
    std::string a = apps[static_cast<size_t>(edge.caller)].name;
    std::string b = apps[static_cast<size_t>(edge.callee)].name;
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    out.emplace(std::move(a), std::move(b));
  }
  return out;
}

std::set<std::pair<std::string, std::string>> Topology::AppServiceDeps(
    const ServiceDirectory& directory) const {
  std::set<std::pair<std::string, std::string>> out;
  for (const InvocationEdge& edge : edges) {
    if (edge.true_entry < 0) continue;
    out.emplace(apps[static_cast<size_t>(edge.caller)].name,
                directory.entry(static_cast<size_t>(edge.true_entry)).id);
  }
  return out;
}

namespace {

// Recursively checks that every step's edge exists and is rooted at
// `expected_caller`.
Status ValidateSteps(const Topology& topology,
                     const std::vector<CallStep>& steps, int expected_caller) {
  for (const CallStep& step : steps) {
    if (step.edge < 0 ||
        step.edge >= static_cast<int>(topology.edges.size())) {
      return Status::InvalidArgument("use-case step references bad edge");
    }
    const InvocationEdge& edge =
        topology.edges[static_cast<size_t>(step.edge)];
    if (edge.caller != expected_caller) {
      return Status::InvalidArgument(
          "use-case step edge caller does not match tree position");
    }
    LOGMINE_RETURN_IF_ERROR(ValidateSteps(topology, step.children,
                                          edge.callee));
  }
  return Status::OK();
}

}  // namespace

Status Topology::Validate(const ServiceDirectory& directory) const {
  const int num_apps = static_cast<int>(apps.size());
  const int num_entries = static_cast<int>(directory.size());
  for (const Application& app : apps) {
    if (app.name.empty()) {
      return Status::InvalidArgument("application with empty name");
    }
    for (int entry : app.provided_entries) {
      if (entry < 0 || entry >= num_entries) {
        return Status::InvalidArgument("app " + app.name +
                                       " provides unknown entry");
      }
    }
  }
  for (const InvocationEdge& edge : edges) {
    if (edge.caller < 0 || edge.caller >= num_apps || edge.callee < 0 ||
        edge.callee >= num_apps) {
      return Status::InvalidArgument("edge with bad endpoint");
    }
    if (edge.caller == edge.callee) {
      return Status::InvalidArgument("self-loop edge on " +
                                     apps[static_cast<size_t>(edge.caller)].name);
    }
    if (edge.cited_entry >= num_entries || edge.true_entry >= num_entries) {
      return Status::InvalidArgument("edge cites unknown entry");
    }
    if (edge.weight < 0) {
      return Status::InvalidArgument("edge with negative weight");
    }
  }
  for (const UseCase& uc : use_cases) {
    if (uc.root_app < 0 || uc.root_app >= num_apps) {
      return Status::InvalidArgument("use case with bad root");
    }
    LOGMINE_RETURN_IF_ERROR(ValidateSteps(*this, uc.steps, uc.root_app));
  }
  for (const UseCase& uc : batch_use_cases) {
    if (uc.root_app < 0 || uc.root_app >= num_apps) {
      return Status::InvalidArgument("batch use case with bad root");
    }
    LOGMINE_RETURN_IF_ERROR(ValidateSteps(*this, uc.steps, uc.root_app));
  }
  return Status::OK();
}

}  // namespace logmine::sim
