// Reproduces Figure 1: the logging activity (logs per second) of two
// interacting applications is visibly correlated. The paper shows
// DPIFormidoc calling DPIPublication; we render the same pair over a
// busy hour as aligned sparklines plus the correlation of their 1-second
// activity series.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "util/string_util.h"

namespace {

std::string Sparkline(const std::vector<int64_t>& counts, size_t begin,
                      size_t end) {
  static const char* kLevels = " .:-=+*#%@";
  int64_t max_count = 1;
  for (size_t i = begin; i < end; ++i) {
    max_count = std::max(max_count, counts[i]);
  }
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    const int level = static_cast<int>(
        static_cast<double>(counts[i]) / static_cast<double>(max_count) * 9);
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  const auto a = dataset.store.FindSource("DPIFormidoc");
  const auto b = dataset.store.FindSource("DPIPublication");
  if (!a.ok() || !b.ok()) {
    std::cerr << "expected applications missing from the corpus\n";
    return 1;
  }
  // A busy weekday hour: day 1, 10:00-11:00.
  const TimeMs begin = dataset.day_begin(0) + 10 * kMillisPerHour;
  const TimeMs end = begin + kMillisPerHour;
  const auto series_a = stats::BinCountSeries(
      dataset.store.SourceTimestamps(a.value()), begin, end,
      kMillisPerSecond);
  const auto series_b = stats::BinCountSeries(
      dataset.store.SourceTimestamps(b.value()), begin, end,
      kMillisPerSecond);

  std::cout << "Figure 1: logs/second for two interacting applications, "
            << FormatTime(begin) << " .. " << FormatTime(end) << "\n\n";
  // Ten rows of 120 seconds each, both apps aligned.
  for (size_t row = 0; row < 5; ++row) {
    const size_t lo = row * 120, hi = lo + 120;
    std::cout << "DPIFormidoc    |" << Sparkline(series_a, lo, hi) << "|\n";
    std::cout << "DPIPublication |" << Sparkline(series_b, lo, hi) << "|\n\n";
  }

  std::vector<double> xs(series_a.begin(), series_a.end());
  std::vector<double> ys(series_b.begin(), series_b.end());
  std::cout << "correlation of the 1s activity series: "
            << FormatDouble(stats::PearsonCorrelation(xs, ys), 3)
            << " (interacting applications correlate visibly)\n";
  return 0;
}
