// Reproduces Figure 2: boxplots of the distance samples behind the L1
// test for the DPIFormidoc / DPIPublication pair, in both directions.
// S_r holds distances of random points to App_A's logs; S_b distances of
// App_B's logs to App_A's. For a dependent pair, the confidence interval
// of the median of S_b lies entirely below the one of S_r.

#include <iostream>

#include "bench/bench_common.h"
#include "core/l1_activity_miner.h"
#include "stats/descriptive.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

void PrintSide(const char* role_a, const char* role_b,
               const logmine::stats::MedianDistanceTestResult& test) {
  using namespace logmine;
  std::cout << "App_A = " << role_a << ", App_B = " << role_b << "\n";
  TablePrinter table({"sample", "q1", "median", "q3", "CI lower", "CI upper"});
  const stats::BoxplotStats random_box = stats::Boxplot(test.sample_random);
  const stats::BoxplotStats target_box = stats::Boxplot(test.sample_target);
  table.AddRow({"S_r (random)", FormatDouble(random_box.q1, 0),
                FormatDouble(random_box.median, 0),
                FormatDouble(random_box.q3, 0),
                FormatDouble(test.ci_random.lower, 0),
                FormatDouble(test.ci_random.upper, 0)});
  table.AddRow({"S_b (App_B)", FormatDouble(target_box.q1, 0),
                FormatDouble(target_box.median, 0),
                FormatDouble(target_box.q3, 0),
                FormatDouble(test.ci_target.lower, 0),
                FormatDouble(test.ci_target.upper, 0)});
  table.Print(std::cout);
  std::cout << "test positive (CI_b entirely below CI_r): "
            << (test.positive ? "YES" : "NO") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  const auto formidoc = dataset.store.FindSource("DPIFormidoc");
  const auto publication = dataset.store.FindSource("DPIPublication");
  if (!formidoc.ok() || !publication.ok()) {
    std::cerr << "expected applications missing from the corpus\n";
    return 1;
  }
  const TimeMs begin = dataset.day_begin(0) + 10 * kMillisPerHour;
  const TimeMs end = begin + kMillisPerHour;

  core::L1Config config;
  core::L1ActivityMiner miner(config);
  std::cout << "Figure 2: distance samples (ms) for one busy hour, "
            << FormatTime(begin) << " .. " << FormatTime(end) << "\n\n";
  // Left plot: DPIPublication plays App_A, DPIFormidoc App_B.
  PrintSide("DPIPublication", "DPIFormidoc",
            miner.TestSlot(dataset.store, publication.value(),
                           formidoc.value(), begin, end, 1));
  // Right plot: roles inverted.
  PrintSide("DPIFormidoc", "DPIPublication",
            miner.TestSlot(dataset.store, formidoc.value(),
                           publication.value(), begin, end, 2));
  std::cout << "(paper: both directions positive at the 95 and 99 levels "
               "for this interacting pair)\n";
  return 0;
}
