// Reproduces Figure 9 (§4.9): per-hour recall of L1 (p1) and L2 (p2)
// against the dependency realizations identified by L3, as a function of
// the system load (hourly log count, rescaled to [0,1]). The paper's
// claims: the regression slope CI for p1 is strictly negative
// ((-0.284, -0.215) at HUG), the one for p2 includes zero, and the
// FP-ratio slopes include zero for both techniques.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/load_experiment.h"
#include "eval/report.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  eval::LoadExperimentConfig config;
  auto result = eval::RunLoadExperiment(dataset, config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  const eval::LoadExperimentResult& r = result.value();

  std::cout << "Figure 9 (left): load, p1 and p2 as a function of time "
               "(hourly, load rescaled to [0,1])\n";
  int64_t max_logs = 1;
  for (const eval::HourPoint& point : r.hours) {
    max_logs = std::max(max_logs, point.num_logs);
  }
  TablePrinter series({"hour", "load", "realized", "p1", "p2", "fp1", "fp2"});
  for (size_t i = 0; i < r.hours.size(); i += 2) {  // sampled hours
    const eval::HourPoint& point = r.hours[i];
    series.AddRow({FormatTime(point.begin).substr(0, 13),
                   FormatDouble(static_cast<double>(point.num_logs) /
                                    static_cast<double>(max_logs),
                                2),
                   std::to_string(point.realized), FormatDouble(point.p1, 2),
                   FormatDouble(point.p2, 2), FormatDouble(point.fp_ratio1, 2),
                   FormatDouble(point.fp_ratio2, 2)});
  }
  series.Print(std::cout);
  std::cout << "(" << r.hours.size() << " usable hours in total)\n";

  std::cout << "\nFigure 9 (right): regressions of p1/p2 on the load\n";
  std::cout << "p1 slope: " << eval::FormatSlopeCi(r.fit_p1, 3)
            << "  strictly negative: "
            << (r.fit_p1.SlopeCiStrictlyNegative() ? "YES" : "NO")
            << "   (paper: (-0.284, -0.215) -> YES)\n";
  std::cout << "p2 slope: " << eval::FormatSlopeCi(r.fit_p2, 3)
            << "  contains zero:     "
            << (r.fit_p2.SlopeCiContainsZero() ? "YES" : "NO")
            << "   (paper: (-0.025, 0.002) -> YES)\n";
  std::cout << "FP-ratio slopes: L1 " << eval::FormatSlopeCi(r.fit_fp1, 3)
            << " contains zero: "
            << (r.fit_fp1.SlopeCiContainsZero() ? "YES" : "NO") << "; L2 "
            << eval::FormatSlopeCi(r.fit_fp2, 3) << " contains zero: "
            << (r.fit_fp2.SlopeCiContainsZero() ? "YES" : "NO")
            << "   (paper: both YES)\n";
  std::cout << "residual normality (QQ correlation): p1 "
            << FormatDouble(r.qq_correlation_p1, 3) << ", p2 "
            << FormatDouble(r.qq_correlation_p2, 3) << "\n";
  return 0;
}
