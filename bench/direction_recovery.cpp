// Evaluates the §5 directionality proposal for L2: for the dependent
// pairs L2 discovers, count how often the run-order heuristic recovers
// the true invocation direction (known from the simulated topology).
// The paper leaves this as future work without numbers; we report
// decision coverage and accuracy on decided pairs.

#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l2_direction.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/3);

  // True directions from the topology (unordered name pair -> caller).
  std::map<core::NamePair, std::string> true_caller;
  for (const sim::InvocationEdge& edge : dataset.scenario.topology.edges) {
    const std::string& caller =
        dataset.scenario.topology.apps[static_cast<size_t>(edge.caller)].name;
    const std::string& callee =
        dataset.scenario.topology.apps[static_cast<size_t>(edge.callee)].name;
    true_caller[core::MakeUnorderedPair(caller, callee)] = caller;
  }

  // L2 over the full period; keep the dependent pairs.
  core::L2CooccurrenceMiner miner{core::L2Config{}};
  auto mined = miner.Mine(dataset.store, dataset.store.min_ts(),
                          dataset.store.max_ts() + 1);
  if (!mined.ok()) {
    std::cerr << mined.status() << "\n";
    return 1;
  }
  std::vector<std::pair<LogStore::SourceId, LogStore::SourceId>> pairs;
  for (const core::L2PairScore& score : mined.value().scored) {
    if (score.dependent) pairs.push_back({score.a, score.b});
  }

  // Sessions over the whole period feed the direction heuristic.
  core::SessionBuilder builder{core::SessionBuilderConfig{}};
  const auto sessions = builder.Build(dataset.store, dataset.store.min_ts(),
                                      dataset.store.max_ts() + 1, nullptr);
  core::L2DirectionDetector detector{core::DirectionConfig{}};
  const auto estimates = detector.Estimate(sessions, pairs);

  int decided = 0, correct = 0, wrong = 0, undecided = 0, not_true_pair = 0;
  for (const core::DirectionEstimate& estimate : estimates) {
    const core::NamePair pair = core::MakeUnorderedPair(
        dataset.store.source_name(estimate.a),
        dataset.store.source_name(estimate.b));
    auto truth = true_caller.find(pair);
    if (truth == true_caller.end()) {
      ++not_true_pair;  // an L2 false positive; no direction to score
      continue;
    }
    if (estimate.direction == core::CallDirection::kUndecided) {
      ++undecided;
      continue;
    }
    ++decided;
    const std::string& predicted_caller =
        estimate.direction == core::CallDirection::kAToB
            ? std::string(dataset.store.source_name(estimate.a))
            : std::string(dataset.store.source_name(estimate.b));
    if (predicted_caller == truth->second) {
      ++correct;
    } else {
      ++wrong;
    }
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"L2 dependent pairs", std::to_string(estimates.size())});
  table.AddRow({"  of those true pairs",
                std::to_string(decided + undecided)});
  table.AddRow({"  direction decided", std::to_string(decided)});
  table.AddRow({"  correct", std::to_string(correct)});
  table.AddRow({"  wrong", std::to_string(wrong)});
  table.AddRow({"  undecided", std::to_string(undecided)});
  table.AddRow({"accuracy on decided",
                decided == 0 ? "n/a"
                             : FormatDouble(static_cast<double>(correct) /
                                                static_cast<double>(decided),
                                            2)});
  table.Print(std::cout);
  std::cout << "\n(§5: asynchronous semantics and callers logging both "
               "before and after an invocation limit what this heuristic "
               "can decide)\n";
  return 0;
}
