// Generality check: the miners were calibrated on the hospital corpus;
// here they run unchanged on the e-banking preset (§1.1/§5: "hospitals
// or banks", "an online banking application for example"). The paper's
// qualitative ordering — L3 most precise, then L2, then L1 — must
// survive the change of landscape.

#include <iostream>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "eval/dataset.h"
#include "simulation/bank_scenario.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  sim::BankScenarioConfig scenario_config;
  scenario_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  auto scenario = sim::BuildBankScenario(scenario_config);
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    return 1;
  }
  sim::SimulationConfig sim_config = sim::BankSimulationDefaults();
  sim_config.num_days = static_cast<int>(flags.GetInt("days", 2));
  sim_config.scale = flags.GetDouble("scale", 1.0);
  sim::Simulator simulator(scenario.value().topology,
                           scenario.value().directory, sim_config);
  LogStore store;
  sim::SimulationSummary summary;
  if (Status s = simulator.Run(&store, &summary); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cerr << "[bench] bank corpus: " << store.size() << " logs, "
            << summary.num_identified_sessions << " sessions\n";

  const core::DependencyModel truth_pairs(
      scenario.value().interaction_pairs);
  const core::DependencyModel truth_services(
      scenario.value().app_service_deps);
  const auto num_apps =
      static_cast<int64_t>(scenario.value().topology.apps.size());
  const int64_t universe_pairs = num_apps * (num_apps - 1) / 2;
  const int64_t universe_services =
      num_apps * static_cast<int64_t>(scenario.value().directory.size());

  core::PipelineConfig pipeline_config;
  pipeline_config.l1.minlogs = 20;  // smaller landscape, lower volume
  pipeline_config.l1.num_threads = 0;
  core::MiningPipeline pipeline(
      eval::VocabularyFrom(scenario.value().directory), pipeline_config);
  auto result = pipeline.Run(store, store.min_ts(), store.max_ts() + 1);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  if (!result.value().all_ok()) {
    std::cerr << result.value().first_error() << "\n";
    return 1;
  }

  std::cout << "Generality: the HUG-calibrated miners on the e-banking "
               "preset ("
            << num_apps << " apps, " << scenario.value().directory.size()
            << " directory entries, " << truth_pairs.size()
            << " true pairs)\n";
  TablePrinter table({"technique", "TP", "FP", "tp-ratio", "recall"});
  auto report = [&](const char* name, const core::DependencyModel& model,
                    const core::DependencyModel& truth, int64_t universe) {
    const core::ConfusionCounts counts =
        core::Evaluate(model, truth, universe);
    table.AddRow({name, std::to_string(counts.true_positives),
                  std::to_string(counts.false_positives),
                  FormatDouble(counts.tp_ratio(), 2),
                  FormatDouble(counts.recall(), 2)});
    return counts.tp_ratio();
  };
  const double p1 = report("L1 (activity)",
                           result.value().l1->Dependencies(store),
                           truth_pairs, universe_pairs);
  const double p2 = report("L2 (sessions)",
                           result.value().l2->Dependencies(store),
                           truth_pairs, universe_pairs);
  const double p3 = report(
      "L3 (directory)",
      result.value().l3->Dependencies(
          store, eval::VocabularyFrom(scenario.value().directory)),
      truth_services, universe_services);
  table.Print(std::cout);
  std::cout << "\nprecision ordering holds: "
            << (p3 >= p2 && p3 >= p1 ? "YES" : "NO")
            << "  (paper: performance proportional to the semantic "
               "content used)\n";
  return 0;
}
