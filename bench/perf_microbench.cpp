// Throughput microbenchmarks (google-benchmark) for the substrate and
// the three miners. The paper's §5 claims "all algorithms scale linearly
// with respect to the number of logs"; the *_Complexity counters below
// let that be checked directly (the per-log cost should be flat across
// corpus sizes).

#include <benchmark/benchmark.h>

#include "core/l1_activity_miner.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "log/codec.h"
#include "log/columnar.h"
#include "simulation/hug_scenario.h"
#include "simulation/simulator.h"
#include "stats/association_tests.h"

namespace {

using namespace logmine;

// Shared fixture: one small corpus per scale, built lazily and cached.
const eval::Dataset& CorpusAt(double scale) {
  static std::map<double, eval::Dataset>* cache =
      new std::map<double, eval::Dataset>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    eval::DatasetConfig config;
    config.simulation.num_days = 1;
    config.simulation.scale = scale;
    auto built = eval::BuildDataset(config);
    if (!built.ok()) std::abort();
    it = cache->emplace(scale, std::move(built).value()).first;
  }
  return it->second;
}

double ScaleArg(const benchmark::State& state) {
  return static_cast<double>(state.range(0)) / 100.0;
}

void BM_SimulatorGenerate(benchmark::State& state) {
  sim::HugScenarioConfig scenario_config;
  auto scenario = sim::BuildHugScenario(scenario_config);
  if (!scenario.ok()) std::abort();
  sim::SimulationConfig config;
  config.num_days = 1;
  config.scale = ScaleArg(state);
  int64_t logs = 0;
  for (auto _ : state) {
    sim::Simulator simulator(scenario.value().topology,
                             scenario.value().directory, config);
    LogStore store;
    sim::SimulationSummary summary;
    if (!simulator.Run(&store, &summary).ok()) std::abort();
    logs = summary.total_logs;
    benchmark::DoNotOptimize(store);
  }
  state.counters["logs"] = static_cast<double>(logs);
  state.counters["ns/log"] = benchmark::Counter(
      static_cast<double>(logs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SimulatorGenerate)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_CodecEncode(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  std::vector<LogRecord> records;
  for (size_t i = 0; i < 2000; ++i) {
    records.push_back(dataset.store.GetRecord(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LineCodec::EncodeAll(records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_CodecEncode)->Unit(benchmark::kMicrosecond);

void BM_CodecDecode(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  std::vector<LogRecord> records;
  for (size_t i = 0; i < 2000; ++i) {
    records.push_back(dataset.store.GetRecord(i));
  }
  const std::string text = LineCodec::EncodeAll(records);
  for (auto _ : state) {
    auto decoded = LineCodec::DecodeAll(text);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_CodecDecode)->Unit(benchmark::kMicrosecond);

void BM_StoreAppendAndIndex(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  std::vector<LogRecord> records;
  for (size_t i = 0; i < dataset.store.size(); i += 4) {
    records.push_back(dataset.store.GetRecord(i));
  }
  for (auto _ : state) {
    LogStore store;
    for (const LogRecord& record : records) {
      if (!store.Append(record).ok()) std::abort();
    }
    store.BuildIndex();
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_StoreAppendAndIndex)->Unit(benchmark::kMillisecond);

// Bulk-ingest path: one Reserve + AppendBatch against the per-record
// Append loop above — same records, so the two benches are directly
// comparable.
void BM_StoreAppendBatchAndIndex(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  std::vector<LogRecord> records;
  for (size_t i = 0; i < dataset.store.size(); i += 4) {
    records.push_back(dataset.store.GetRecord(i));
  }
  for (auto _ : state) {
    LogStore store;
    if (!store.AppendBatch(records).ok()) std::abort();
    store.BuildIndex();
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_StoreAppendBatchAndIndex)->Unit(benchmark::kMillisecond);

// Chunked text decode over the whole day-one corpus: Arg is
// DecodeOptions::num_chunks (1 = serial reference, 0 = auto, one chunk
// per executor worker).
void BM_CodecDecodeChunked(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  std::vector<LogRecord> records;
  records.reserve(dataset.store.size());
  for (size_t i = 0; i < dataset.store.size(); ++i) {
    records.push_back(dataset.store.GetRecord(i));
  }
  const std::string text = LineCodec::EncodeAll(records);
  DecodeOptions options;
  options.num_chunks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto decoded = LineCodec::DecodeAll(text, options, nullptr);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CodecDecodeChunked)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_ColumnarEncode(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeColumnar(dataset.store));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store.size()));
}
BENCHMARK(BM_ColumnarEncode)->Unit(benchmark::kMillisecond);

void BM_ColumnarDecode(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(0.05);
  const std::string bytes = EncodeColumnar(dataset.store);
  for (auto _ : state) {
    auto loaded = DecodeColumnar(bytes);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_ColumnarDecode)->Unit(benchmark::kMillisecond);

void BM_L1MineDay(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(ScaleArg(state));
  core::L1Config config;
  config.minlogs = 10;
  core::L1ActivityMiner miner(config);
  for (auto _ : state) {
    auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                             dataset.day_end(0));
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store.size()));
}
BENCHMARK(BM_L1MineDay)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_L2MineDay(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(ScaleArg(state));
  core::L2CooccurrenceMiner miner{core::L2Config{}};
  for (auto _ : state) {
    auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                             dataset.day_end(0));
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store.size()));
}
BENCHMARK(BM_L2MineDay)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_L3MineDay(benchmark::State& state) {
  const eval::Dataset& dataset = CorpusAt(ScaleArg(state));
  core::L3TextMiner miner(dataset.vocabulary, core::L3Config{});
  for (auto _ : state) {
    auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                             dataset.day_end(0));
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store.size()));
}
BENCHMARK(BM_L3MineDay)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_MedianDistanceTest(benchmark::State& state) {
  Rng rng(7);
  std::vector<int64_t> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.UniformInt(0, kMillisPerHour));
    b.push_back(rng.UniformInt(0, kMillisPerHour));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  stats::MedianDistanceTestConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::MedianDistanceTest(a, b, 0, kMillisPerHour, config, &rng));
  }
}
BENCHMARK(BM_MedianDistanceTest)->Unit(benchmark::kMicrosecond);

void BM_DunningTest(benchmark::State& state) {
  stats::Contingency2x2 table{123, 456, 789, 101112};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::DunningLogLikelihood(table));
  }
}
BENCHMARK(BM_DunningTest);

}  // namespace

BENCHMARK_MAIN();
