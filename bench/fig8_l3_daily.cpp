// Reproduces Figure 8 and the §4.8 error analysis: positive decisions of
// method L3 per day with stop patterns, plus the union-over-days false
// negative / false positive taxonomy and the no-stop-pattern ablation.
// Paper: 141-152 TP weekdays (116/117 weekend), 7-11 FP weekdays (5
// weekend), median-TP-ratio CI [0.93, 0.96]; union: 16 FN (6 never
// realized, 7 unlogged, 3 wrong name) and 19 FP (2 inverted, 5
// transitive, 7 coincidence, 5 erroneous id); without stop patterns the
// inverted dependencies rise to ~24.

#include <iostream>

#include "bench/bench_common.h"
#include "eval/daily_runner.h"
#include "eval/report.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  core::L3Config config;
  auto result = eval::RunL3Daily(dataset, config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure("Figure 8: positive decisions for L3 (stop patterns on)",
                         result.value().series, std::cout);
  auto ci = result.value().TpRatioCi(0.98);
  if (ci.ok()) {
    std::cout << "\nmedian TP ratio: " << eval::FormatCi(ci.value(), 2)
              << "   (paper: [0.93, 0.96] at level 0.984)\n";
  }

  // ---- union-over-days error taxonomy (§4.8) -----------------------------
  const core::DependencyModel union_model = result.value().UnionModel();
  const core::ConfusionCounts union_counts = core::Evaluate(
      union_model, dataset.reference_services, dataset.universe_services);
  std::cout << "\nunion over all days: TP=" << union_counts.true_positives
            << " FP=" << union_counts.false_positives
            << " FN=" << union_counts.false_negatives
            << "  (paper: 161 detected, 19 FP, 16 FN)\n";

  // Attribute the false negatives/positives to the injected defects.
  const auto& topo = dataset.scenario.topology;
  const auto& dir = dataset.scenario.directory;
  auto edge_dep = [&](int e) {
    const auto& edge = topo.edges[static_cast<size_t>(e)];
    return core::NamePair{topo.apps[static_cast<size_t>(edge.caller)].name,
                          dir.entry(static_cast<size_t>(edge.true_entry)).id};
  };
  int fn_unlogged = 0, fn_wrong_name = 0, fn_erroneous = 0, fn_rare = 0,
      fn_other = 0;
  for (const core::NamePair& missing :
       dataset.reference_services.Minus(union_model)) {
    bool attributed = false;
    for (int e : dataset.scenario.defects.unlogged_edges) {
      if (edge_dep(e) == missing) {
        ++fn_unlogged;
        attributed = true;
      }
    }
    for (int e : dataset.scenario.defects.wrong_name_edges) {
      if (edge_dep(e) == missing) {
        ++fn_wrong_name;
        attributed = true;
      }
    }
    for (int e : dataset.scenario.defects.erroneous_id_edges) {
      if (edge_dep(e) == missing) {
        ++fn_erroneous;
        attributed = true;
      }
    }
    for (int e : dataset.scenario.defects.rare_edges) {
      if (edge_dep(e) == missing) {
        ++fn_rare;
        attributed = true;
      }
    }
    if (!attributed) ++fn_other;
  }
  std::cout << "FN taxonomy: never-realized(rare)=" << fn_rare
            << " not-logged=" << fn_unlogged
            << " wrong-name=" << fn_wrong_name
            << " erroneous-id=" << fn_erroneous << " other=" << fn_other
            << "\n   (paper: 6 seldom-used, 7 not logged, 3 wrong name)\n";

  int fp_inverted = 0, fp_coincidence = 0, fp_transitive = 0,
      fp_erroneous = 0, fp_other = 0;
  for (const core::NamePair& extra :
       union_model.Minus(dataset.reference_services)) {
    bool attributed = false;
    // Inverted: the source is the provider of the cited entry.
    auto owner = dataset.entry_owner.find(extra.second);
    if (owner != dataset.entry_owner.end() && owner->second == extra.first) {
      ++fp_inverted;
      attributed = true;
    }
    for (const auto& [app, entry] : dataset.scenario.defects.coincidences) {
      if (topo.apps[static_cast<size_t>(app)].name == extra.first &&
          dir.entry(static_cast<size_t>(entry)).id == extra.second) {
        ++fp_coincidence;
        attributed = true;
      }
    }
    for (int e : dataset.scenario.defects.exception_edges) {
      const auto& edge = topo.edges[static_cast<size_t>(e)];
      if (topo.apps[static_cast<size_t>(edge.caller)].name == extra.first &&
          dir.entry(static_cast<size_t>(edge.exception_deep_entry)).id ==
              extra.second) {
        ++fp_transitive;
        attributed = true;
      }
    }
    for (int e : dataset.scenario.defects.erroneous_id_edges) {
      const auto& edge = topo.edges[static_cast<size_t>(e)];
      if (topo.apps[static_cast<size_t>(edge.caller)].name == extra.first &&
          dir.entry(static_cast<size_t>(edge.cited_entry)).id ==
              extra.second) {
        ++fp_erroneous;
        attributed = true;
      }
    }
    if (!attributed) ++fp_other;
  }
  std::cout << "FP taxonomy: inverted=" << fp_inverted
            << " transitive(exception)=" << fp_transitive
            << " coincidence=" << fp_coincidence
            << " erroneous-id=" << fp_erroneous << " other=" << fp_other
            << "\n   (paper: 2 inverted, 5 transitive, 7 coincidence, 5 "
               "erroneous id)\n";

  // ---- ablation: stop patterns off ---------------------------------------
  core::L3Config no_stop = config;
  no_stop.use_stop_patterns = false;
  auto without = eval::RunL3Daily(dataset, no_stop);
  if (without.ok()) {
    const core::DependencyModel union_without =
        without.value().UnionModel();
    int inverted_without = 0;
    for (const core::NamePair& extra :
         union_without.Minus(dataset.reference_services)) {
      auto owner = dataset.entry_owner.find(extra.second);
      if (owner != dataset.entry_owner.end() &&
          owner->second == extra.first) {
        ++inverted_without;
      }
    }
    std::cout << "\nwithout stop patterns: inverted dependencies rise from "
              << fp_inverted << " to " << inverted_without
              << "  (paper: 2 -> 24)\n";
  }
  return 0;
}
