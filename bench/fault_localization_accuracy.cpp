// Closes the paper's §1.1 loop quantitatively: for each of several
// injected outages, mine the model from normal operation (L3), detect
// symptomatic applications from error-rate spikes, rank root causes on
// the mined graph, and report where the true victim lands. The paper
// motivates dependency models *for* root cause analysis; this bench
// measures how well the mined model actually supports it.

#include <iostream>

#include "core/impact_analysis.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "log/filter.h"
#include "simulation/simulator.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace logmine;

// Returns the victim's rank (1-based; 0 = not ranked) plus diagnostics.
struct Trial {
  std::string victim;
  int rank = 0;
  size_t num_symptomatic = 0;
};

Trial RunTrial(const sim::HugScenario& scenario, int victim, double scale,
               uint64_t seed) {
  Trial trial;
  trial.victim =
      scenario.topology.apps[static_cast<size_t>(victim)].name;

  sim::SimulationConfig config;
  config.seed = seed;
  config.num_days = 1;
  config.scale = scale;
  const TimeMs start = sim::DefaultSimulationStart();
  const TimeMs outage_begin = start + 14 * kMillisPerHour;
  const TimeMs outage_end = outage_begin + kMillisPerHour;
  config.failures.push_back(
      sim::FailureWindow{victim, outage_begin, outage_end});

  sim::Simulator simulator(scenario.topology, scenario.directory, config);
  LogStore store;
  if (!simulator.Run(&store, nullptr).ok()) return trial;

  const core::ServiceVocabulary vocabulary =
      eval::VocabularyFrom(scenario.directory);
  core::L3TextMiner miner(vocabulary, core::L3Config{});
  auto mined = miner.Mine(store, start, outage_begin);
  if (!mined.ok()) return trial;
  std::map<std::string, std::string> entry_owner;
  for (const sim::Application& app : scenario.topology.apps) {
    for (int entry : app.provided_entries) {
      entry_owner[scenario.directory.entry(static_cast<size_t>(entry)).id] =
          app.name;
    }
  }
  const core::DependencyGraph graph =
      core::DependencyGraph::FromAppServiceModel(
          mined.value().Dependencies(store, vocabulary), entry_owner);

  // Symptom detection by error-rate spike vs the morning baseline.
  std::map<LogStore::SourceId, std::pair<int64_t, int64_t>> window_counts;
  std::map<LogStore::SourceId, std::pair<int64_t, int64_t>> base_counts;
  for (uint32_t idx :
       IndicesInRange(store, start + 8 * kMillisPerHour, outage_begin)) {
    auto& [errors, total] = base_counts[store.source_id(idx)];
    errors += store.severity(idx) == Severity::kError;
    ++total;
  }
  for (uint32_t idx : IndicesInRange(store, outage_begin, outage_end)) {
    auto& [errors, total] = window_counts[store.source_id(idx)];
    errors += store.severity(idx) == Severity::kError;
    ++total;
  }
  std::set<std::string> symptomatic;
  for (const auto& [source, counts] : window_counts) {
    const auto& [errors, total] = counts;
    if (total < 10 || errors < 3) continue;
    const double window_rate =
        static_cast<double>(errors) / static_cast<double>(total);
    const auto& [base_errors, base_total] = base_counts[source];
    const double base_rate =
        base_total == 0 ? 0.0
                        : static_cast<double>(base_errors) /
                              static_cast<double>(base_total);
    if (window_rate > 5 * base_rate + 0.02) {
      symptomatic.insert(std::string(store.source_name(source)));
    }
  }
  trial.num_symptomatic = symptomatic.size();

  const auto ranking = core::RankRootCauses(graph, symptomatic);
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].component == trial.victim) {
      trial.rank = static_cast<int>(i) + 1;
      break;
    }
  }
  return trial;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const double scale = flags.GetDouble("scale", 0.6);

  sim::HugScenarioConfig scenario_config;
  scenario_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  auto scenario = sim::BuildHugScenario(scenario_config);
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    return 1;
  }

  // Victims: every backend plus a few heavily used services.
  std::vector<int> victims;
  for (size_t a = 0; a < scenario.value().topology.apps.size(); ++a) {
    if (scenario.value().topology.apps[a].tier == sim::Tier::kBackend) {
      victims.push_back(static_cast<int>(a));
    }
  }
  for (const char* name : {"DPIPublication", "PatientIndex", "LabResults"}) {
    victims.push_back(scenario.value().topology.FindApp(name));
  }

  std::cout << "Fault localization over " << victims.size()
            << " injected outages (mined model, error-spike symptoms)\n";
  TablePrinter table({"victim", "#symptomatic", "rank of true cause"});
  int top1 = 0, top3 = 0, total = 0;
  for (size_t i = 0; i < victims.size(); ++i) {
    const Trial trial = RunTrial(scenario.value(), victims[i], scale,
                                 scenario_config.seed + 100 + i);
    ++total;
    if (trial.rank == 1) ++top1;
    if (trial.rank >= 1 && trial.rank <= 3) ++top3;
    table.AddRow({trial.victim, std::to_string(trial.num_symptomatic),
                  trial.rank == 0 ? "unranked" : std::to_string(trial.rank)});
  }
  table.Print(std::cout);
  std::cout << "\ntop-1 accuracy: " << top1 << "/" << total
            << "   top-3 accuracy: " << top3 << "/" << total << "\n";
  return 0;
}
