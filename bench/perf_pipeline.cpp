// End-to-end pipeline benchmark with a machine-readable report
// (BENCH_pipeline.json): per-miner throughput (logs/sec, ns/log) across
// a thread sweep {1, 2, 4, 8}, plus the speedup of the executor-based
// L2+L3 hot path against an inline reimplementation of the seed's
// serial path (std::map bigram counting; ten backtracking wildcard
// scans per message). Keeping the reference in-tree makes the reported
// speedup self-contained — it does not depend on checking out the old
// revision.
//
// Also reports the cost of the checkpoint/recovery layer: the same
// L2+L3 daily sweep with checkpointing off vs snapshotting after every
// day, as absolute ms and as a fraction of the uncheckpointed run.
//
// Finally, the observability tax: the same end-to-end run with a fully
// wired ObsContext vs none, reported as a fraction (the budget is 3%),
// plus one instrumented pass over every stage — ingest decode, the
// three miners, and a checkpointed sweep — whose metrics snapshot is
// embedded in the report and whose spans are exported as Chrome-trace
// JSON (load in chrome://tracing or ui.perfetto.dev).
//
// The "ingest" section benchmarks the corpus I/O path on the same
// corpus: serial text decode vs the chunked parallel decoder
// (DecodeOptions::num_chunks = 0, auto), and the binary columnar
// format's encode/decode, with correctness booleans (parallel output
// byte-identical to serial; columnar round-trip lossless; magic-byte
// autodetection through ReadCorpusFile). The columnar corpus is also
// written to --columnar-out so CI can archive it as an artifact.
//
// Usage: perf_pipeline [--scale=1.0] [--days=1] [--seed=N]
//                      [--reps=3] [--out=BENCH_pipeline.json]
//                      [--trace=trace.json]
//                      [--columnar-out=BENCH_corpus.lmc]

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/l2_session_builder.h"
#include "core/pipeline.h"
#include "eval/resumable_runner.h"
#include "eval/shard_supervisor.h"
#include "log/codec.h"
#include "log/columnar.h"
#include "log/corpus_io.h"
#include "log/filter.h"
#include "obs/obs.h"
#include "stats/association_tests.h"
#include "util/string_util.h"

namespace {

using namespace logmine;

constexpr int kThreadSweep[] = {1, 2, 4, 8};

double MeasureMs(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// ---------------------------------------------------------------------
// Seed-style references: the exact algorithms the executor rework
// replaced, kept serial and allocation-heavy on purpose.

// L2 as seeded: one global std::map keyed by the source pair.
int64_t ReferenceL2(const eval::Dataset& dataset, TimeMs begin, TimeMs end) {
  const core::L2Config config;
  core::SessionBuilder builder(config.session);
  core::SessionBuildStats stats;
  const std::vector<core::Session> sessions =
      builder.Build(dataset.store, begin, end, &stats);
  std::map<std::pair<uint32_t, uint32_t>, int64_t> joint;
  for (const core::Session& session : sessions) {
    for (size_t i = 0; i + 1 < session.entries.size(); ++i) {
      const core::SessionLogEntry& lhs = session.entries[i];
      const core::SessionLogEntry& rhs = session.entries[i + 1];
      if (lhs.source == rhs.source) continue;
      if (config.timeout > 0 && rhs.ts - lhs.ts > config.timeout) continue;
      ++joint[{lhs.source, rhs.source}];
    }
  }
  std::map<uint32_t, int64_t> first_marginal, second_marginal;
  int64_t total = 0;
  for (const auto& [pair, count] : joint) {
    first_marginal[pair.first] += count;
    second_marginal[pair.second] += count;
    total += count;
  }
  const int64_t floor = std::max<int64_t>(
      config.min_cooccurrence,
      static_cast<int64_t>(config.min_cooccurrence_per_session *
                           static_cast<double>(sessions.size())));
  int64_t dependent = 0;
  for (const auto& [pair, o11] : joint) {
    if (o11 < floor) continue;
    stats::Contingency2x2 table;
    table.o11 = o11;
    table.o12 = first_marginal[pair.first] - o11;
    table.o21 = second_marginal[pair.second] - o11;
    table.o22 = total - first_marginal[pair.first] -
                second_marginal[pair.second] + o11;
    const double score = stats::DunningLogLikelihood(table);
    if (stats::IsSignificantAttraction(table, score, config.alpha)) {
      ++dependent;
    }
  }
  return total + dependent;  // consumed so nothing is optimized away
}

// L3 as seeded: every message runs the generic backtracking matcher
// against all ten stop patterns, and every token is lower-cased into a
// fresh std::string before the vocabulary lookup.
int64_t ReferenceL3(const eval::Dataset& dataset, TimeMs begin, TimeMs end) {
  const std::vector<std::string> stop_patterns = core::DefaultStopPatterns();
  std::map<std::string, size_t> token_index;
  for (size_t i = 0; i < dataset.vocabulary.entries.size(); ++i) {
    token_index[ToLower(dataset.vocabulary.entries[i].id)] = i;
  }
  std::map<std::pair<uint32_t, size_t>, int64_t> citations;
  int64_t stopped = 0;
  for (uint32_t idx : IndicesInRange(dataset.store, begin, end)) {
    const std::string_view message = dataset.store.message(idx);
    bool is_stopped = false;
    for (const std::string& pattern : stop_patterns) {
      if (WildcardMatch(pattern, message)) {
        is_stopped = true;
        break;
      }
    }
    if (is_stopped) {
      ++stopped;
      continue;
    }
    std::vector<size_t> cited;
    for (std::string_view token : TokenizeIdentifiers(message)) {
      const std::string lower = ToLower(token);
      auto it = token_index.find(lower);
      if (it != token_index.end()) cited.push_back(it->second);
    }
    std::sort(cited.begin(), cited.end());
    cited.erase(std::unique(cited.begin(), cited.end()), cited.end());
    for (size_t entry : cited) {
      ++citations[{dataset.store.source_id(idx), entry}];
    }
  }
  int64_t total = stopped;
  for (const auto& [key, count] : citations) total += count;
  return total;
}

// ---------------------------------------------------------------------

struct Sample {
  double ms = 0.0;
  double ns_per_log = 0.0;
  double logs_per_sec = 0.0;
};

Sample ToSample(double ms, int64_t logs) {
  Sample sample;
  sample.ms = ms;
  sample.ns_per_log = ms * 1e6 / static_cast<double>(logs);
  sample.logs_per_sec = static_cast<double>(logs) / (ms / 1e3);
  return sample;
}

void EmitSample(std::ostream& os, const Sample& sample) {
  os << "{\"ms\": " << sample.ms << ", \"ns_per_log\": " << sample.ns_per_log
     << ", \"logs_per_sec\": " << static_cast<int64_t>(sample.logs_per_sec)
     << "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const std::string out_path =
      flags.GetString("out", "BENCH_pipeline.json");

  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/1);
  const TimeMs begin = dataset.day_begin(0);
  const TimeMs end = dataset.day_end(0);
  const int64_t logs =
      static_cast<int64_t>(IndicesInRange(dataset.store, begin, end).size());

  // Seed-style serial reference for the two sharded miners.
  int64_t ref_l2_checksum = 0, ref_l3_checksum = 0;
  const double ref_l2_ms = MeasureMs(
      reps, [&] { ref_l2_checksum = ReferenceL2(dataset, begin, end); });
  const double ref_l3_ms = MeasureMs(
      reps, [&] { ref_l3_checksum = ReferenceL3(dataset, begin, end); });
  std::cerr << "[bench] seed-style serial reference: L2 " << ref_l2_ms
            << " ms, L3 " << ref_l3_ms << " ms\n";

  // Per-miner and end-to-end sweeps.
  std::map<int, Sample> l1_sweep, l2_sweep, l3_sweep, pipeline_sweep;
  int64_t l2_checksum = 0, l3_checksum = 0;
  core::L1Result l1_result;
  for (int threads : kThreadSweep) {
    {
      core::L1Config config;
      config.num_threads = threads;
      core::L1ActivityMiner miner(config);
      l1_sweep[threads] = ToSample(
          MeasureMs(reps,
                    [&] {
                      auto result = miner.Mine(dataset.store, begin, end);
                      if (!result.ok()) std::abort();
                      l1_result = std::move(result).value();
                    }),
          logs);
    }
    {
      core::L2Config config;
      config.num_threads = threads;
      core::L2CooccurrenceMiner miner(config);
      l2_sweep[threads] = ToSample(
          MeasureMs(reps,
                    [&] {
                      auto result = miner.Mine(dataset.store, begin, end);
                      if (!result.ok()) std::abort();
                      int64_t dependent = 0;
                      for (const auto& s : result.value().scored) {
                        if (s.dependent) ++dependent;
                      }
                      l2_checksum = result.value().num_bigrams + dependent;
                    }),
          logs);
    }
    {
      core::L3Config config;
      config.num_threads = threads;
      core::L3TextMiner miner(dataset.vocabulary, config);
      l3_sweep[threads] = ToSample(
          MeasureMs(reps,
                    [&] {
                      auto result = miner.Mine(dataset.store, begin, end);
                      if (!result.ok()) std::abort();
                      int64_t total = result.value().logs_stopped;
                      for (const auto& c : result.value().citations) {
                        total += c.count;
                      }
                      l3_checksum = total;
                    }),
          logs);
    }
    {
      core::PipelineConfig config;
      config.concurrent_miners = threads != 1;
      config.l1.num_threads = threads;
      config.l2.num_threads = threads;
      config.l3.num_threads = threads;
      core::MiningPipeline pipeline(dataset.vocabulary, config);
      pipeline_sweep[threads] = ToSample(
          MeasureMs(reps,
                    [&] {
                      auto result = pipeline.Run(dataset.store, begin, end);
                      if (!result.ok() || !result.value().all_ok()) {
                        std::abort();
                      }
                    }),
          logs);
    }
    std::cerr << "[bench] threads=" << threads << ": pipeline "
              << pipeline_sweep[threads].ms << " ms, L2 "
              << l2_sweep[threads].ms << " ms, L3 " << l3_sweep[threads].ms
              << " ms\n";
  }

  // L1 support pruning: skipping under-supported pairs must be free of
  // observable effect, so an unpruned run (same thread count as the
  // last sweep point) must produce identical pair results; the report
  // records the prune counters and both timings.
  const int max_threads = kThreadSweep[std::size(kThreadSweep) - 1];
  core::L1Result l1_unpruned_result;
  double l1_unpruned_ms = 0;
  {
    core::L1Config config;
    config.num_threads = max_threads;
    config.prune_support = false;
    core::L1ActivityMiner miner(config);
    l1_unpruned_ms = MeasureMs(reps, [&] {
      auto result = miner.Mine(dataset.store, begin, end);
      if (!result.ok()) std::abort();
      l1_unpruned_result = std::move(result).value();
    });
  }
  bool pruned_matches_unpruned =
      l1_unpruned_result.pairs.size() == l1_result.pairs.size();
  for (size_t i = 0; pruned_matches_unpruned && i < l1_result.pairs.size();
       ++i) {
    const core::L1PairResult& p = l1_result.pairs[i];
    const core::L1PairResult& u = l1_unpruned_result.pairs[i];
    pruned_matches_unpruned =
        p.a == u.a && p.b == u.b && p.slots_supported == u.slots_supported &&
        p.slots_positive == u.slots_positive && p.dependent == u.dependent;
  }
  const int64_t prune_candidates = l1_result.pairs_tested +
                                   l1_result.pairs_pruned;
  std::cerr << "[bench] l1 pruning: " << l1_result.pairs_pruned << "/"
            << prune_candidates << " pairs pruned, pruned run "
            << l1_sweep[max_threads].ms << " ms vs unpruned "
            << l1_unpruned_ms << " ms, results "
            << (pruned_matches_unpruned ? "identical" : "DIFFER") << "\n";

  // Sharded-sweep supervisor: the same corpus mined as
  // (days × pair-range) shards through eval/shard_supervisor — the
  // fault-tolerant path — versus the plain unsliced mine above. Each
  // shard mines serially (the shard grid is the parallel axis); the
  // merged model must equal the unsliced run's dependencies.
  constexpr int kSweepRanges = 4;
  eval::ShardSupervisorConfig sweep_supervisor;
  sweep_supervisor.num_ranges = kSweepRanges;
  sweep_supervisor.poll_ms = 1;
  core::L1Config sweep_l1_config;
  sweep_l1_config.num_threads = 1;
  eval::ShardedSweepResult sweep_result;
  const double sweep_ms = MeasureMs(reps, [&] {
    auto result =
        eval::RunL1ShardedSweep(dataset, sweep_l1_config, sweep_supervisor);
    if (!result.ok()) std::abort();
    sweep_result = std::move(result).value();
  });
  const bool sweep_matches_unsharded =
      sweep_result.merged.daily[0].pairs() ==
      l1_result.Dependencies(dataset.store).pairs();
  std::cerr << "[bench] sharded sweep: " << sweep_ms << " ms over "
            << sweep_result.shards.size() << " shards ("
            << eval::SweepOutcomeName(sweep_result.outcome) << ", coverage "
            << sweep_result.merged.coverage.fraction() << "), day-0 model "
            << (sweep_matches_unsharded ? "matches" : "DIFFERS from")
            << " the unsliced mine\n";

  // Checkpoint overhead: the L2+L3 daily sweep (the resumable runner's
  // unit of work) with checkpointing disabled vs one snapshot generation
  // per day. L1 is excluded so the denominator is the two fast miners —
  // the conservative (largest) overhead fraction.
  eval::SweepConfig sweep_config;
  sweep_config.run_l1 = false;
  const double ckpt_off_ms = MeasureMs(reps, [&] {
    auto result =
        eval::RunSweepResumable(dataset, sweep_config, eval::ResumableOptions{});
    if (!result.ok()) std::abort();
  });
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "logmine_bench_ckpt").string();
  eval::ResumableOptions ckpt_options;
  ckpt_options.checkpoint.dir = ckpt_dir;
  const double ckpt_on_ms = MeasureMs(reps, [&] {
    std::filesystem::remove_all(ckpt_dir);  // every rep runs fresh
    auto result = eval::RunSweepResumable(dataset, sweep_config, ckpt_options);
    if (!result.ok()) std::abort();
  });
  std::filesystem::remove_all(ckpt_dir);
  const double ckpt_overhead_ms = ckpt_on_ms - ckpt_off_ms;
  std::cerr << "[bench] checkpoint overhead: " << ckpt_off_ms
            << " ms off, " << ckpt_on_ms << " ms on ("
            << ckpt_overhead_ms / ckpt_off_ms * 100.0 << "%)\n";

  // Observability tax on the end-to-end run: best-of-N with a fully
  // wired context (metrics + trace, installed globally so every layer
  // reports) against the already-measured plain run at 8 threads.
  core::PipelineConfig obs_pipeline_config;
  obs_pipeline_config.l1.num_threads = 8;
  obs_pipeline_config.l2.num_threads = 8;
  obs_pipeline_config.l3.num_threads = 8;
  core::MiningPipeline obs_pipeline(dataset.vocabulary, obs_pipeline_config);
  const double obs_off_ms = pipeline_sweep[8].ms;
  const double obs_on_ms = MeasureMs(reps, [&] {
    obs::ObsContext context;
    obs::ScopedGlobalObs scoped(&context);
    auto result = obs_pipeline.Run(dataset.store, begin, end, nullptr,
                                   &context);
    if (!result.ok() || !result.value().all_ok()) std::abort();
  });
  const double obs_overhead_fraction = (obs_on_ms - obs_off_ms) / obs_off_ms;
  std::cerr << "[bench] observability overhead: " << obs_off_ms
            << " ms off, " << obs_on_ms << " ms on ("
            << obs_overhead_fraction * 100.0 << "%)\n";

  // One instrumented pass over every stage — ingest decode, the three
  // miners, a checkpointed sweep — so the report carries a per-stage
  // metrics snapshot and a flight-recorder trace of the whole flow.
  obs::ObsContext obs_context;
  std::string obs_metrics_json;
  {
    obs::ScopedGlobalObs scoped(&obs_context);
    std::vector<LogRecord> records;
    records.reserve(dataset.store.size());
    for (size_t i = 0; i < dataset.store.size(); ++i) {
      records.push_back(dataset.store.GetRecord(i));
    }
    const std::string text = LineCodec::EncodeAll(records);
    if (!LineCodec::DecodeAll(text).ok()) std::abort();

    auto run = obs_pipeline.Run(dataset.store, begin, end, nullptr,
                                &obs_context);
    if (!run.ok() || !run.value().all_ok()) std::abort();

    std::filesystem::remove_all(ckpt_dir);
    eval::ResumableOptions obs_ckpt_options = ckpt_options;
    obs_ckpt_options.obs = &obs_context;
    auto sweep =
        eval::RunSweepResumable(dataset, sweep_config, obs_ckpt_options);
    if (!sweep.ok()) std::abort();
    std::filesystem::remove_all(ckpt_dir);

    obs_metrics_json = obs_context.metrics().Snapshot().ToJson();
  }
  const std::string trace_path = flags.GetString("trace", "trace.json");
  if (!trace_path.empty()) {
    if (Status s = obs_context.trace().WriteChromeTrace(trace_path); !s.ok()) {
      std::cerr << "cannot write " << trace_path << ": " << s << "\n";
      return 1;
    }
    std::cerr << "[bench] wrote " << trace_path << " ("
              << obs_context.trace().Events().size() << " spans, "
              << obs_context.trace().dropped() << " dropped)\n";
  }

  // Ingest path: serial text decode vs the chunked parallel decoder,
  // and the binary columnar format, all on the same corpus. The
  // correctness booleans matter as much as the timings — a fast decode
  // that produces different records must fail CI.
  std::string corpus_text;
  {
    std::vector<LogRecord> records;
    records.reserve(dataset.store.size());
    for (size_t i = 0; i < dataset.store.size(); ++i) {
      records.push_back(dataset.store.GetRecord(i));
    }
    corpus_text = LineCodec::EncodeAll(records);
  }
  const double corpus_mb = static_cast<double>(corpus_text.size()) / 1e6;
  const int64_t corpus_logs = static_cast<int64_t>(dataset.store.size());
  size_t ingest_sink = 0;  // consumed so decode work is not optimized away

  DecodeOptions serial_options;
  serial_options.num_chunks = 1;
  DecodeOptions chunked_options;
  chunked_options.num_chunks = 0;  // auto: one chunk per pool worker
  const double text_serial_ms = MeasureMs(reps, [&] {
    auto decoded = LineCodec::DecodeAll(corpus_text, serial_options, nullptr);
    if (!decoded.ok()) std::abort();
    ingest_sink += decoded.value().size();
  });
  const double text_chunked_ms = MeasureMs(reps, [&] {
    auto decoded = LineCodec::DecodeAll(corpus_text, chunked_options, nullptr);
    if (!decoded.ok()) std::abort();
    ingest_sink += decoded.value().size();
  });
  bool parallel_matches_serial = false;
  {
    auto serial = LineCodec::DecodeAll(corpus_text, serial_options, nullptr);
    auto chunked = LineCodec::DecodeAll(corpus_text, chunked_options, nullptr);
    parallel_matches_serial =
        serial.ok() && chunked.ok() &&
        LineCodec::EncodeAll(serial.value()) ==
            LineCodec::EncodeAll(chunked.value());
  }

  const std::string columnar_bytes = EncodeColumnar(dataset.store);
  const double columnar_write_ms = MeasureMs(reps, [&] {
    ingest_sink += EncodeColumnar(dataset.store).size();
  });
  const double columnar_read_ms = MeasureMs(reps, [&] {
    auto loaded = DecodeColumnar(columnar_bytes);
    if (!loaded.ok()) std::abort();
    ingest_sink += loaded.value().size();
  });
  bool columnar_roundtrip_ok = false;
  {
    auto loaded = DecodeColumnar(columnar_bytes);
    if (loaded.ok()) {
      std::vector<LogRecord> back;
      back.reserve(loaded.value().size());
      for (size_t i = 0; i < loaded.value().size(); ++i) {
        back.push_back(loaded.value().GetRecord(i));
      }
      columnar_roundtrip_ok = LineCodec::EncodeAll(back) == corpus_text;
    }
  }

  // Persist the columnar corpus (crash-safe write) and read it back
  // through the format-autodetecting corpus reader — the artifact CI
  // uploads, proven loadable before it is archived.
  const std::string columnar_out =
      flags.GetString("columnar-out", "BENCH_corpus.lmc");
  bool autodetect_ok = false;
  if (!columnar_out.empty()) {
    if (Status s = WriteColumnarFile(columnar_out, dataset.store); !s.ok()) {
      std::cerr << "cannot write " << columnar_out << ": " << s << "\n";
      return 1;
    }
    auto reread = ReadCorpusFile(columnar_out);
    autodetect_ok = reread.ok() && reread.value().index_built() &&
                    reread.value().size() == dataset.store.size();
  }

  const double chunked_speedup = text_serial_ms / text_chunked_ms;
  const double columnar_read_speedup = text_serial_ms / columnar_read_ms;
  const unsigned hardware_concurrency = std::thread::hardware_concurrency();
  std::cerr << "[bench] ingest: text decode " << text_serial_ms
            << " ms serial / " << text_chunked_ms << " ms chunked ("
            << chunked_speedup << "x on " << hardware_concurrency
            << " cores), columnar read " << columnar_read_ms << " ms ("
            << columnar_read_speedup << "x vs text), correctness "
            << ((parallel_matches_serial && columnar_roundtrip_ok)
                    ? "ok"
                    : "BROKEN")
            << " (sink " << (ingest_sink != 0) << ")\n";

  // The rework must not change what the miners compute.
  const bool results_match =
      l2_checksum == ref_l2_checksum && l3_checksum == ref_l3_checksum;
  if (!results_match) {
    std::cerr << "[bench] WARNING: executor miners disagree with the "
                 "seed-style reference (l2 " << l2_checksum << " vs "
              << ref_l2_checksum << ", l3 " << l3_checksum << " vs "
              << ref_l3_checksum << ")\n";
  }

  const double ref_total = ref_l2_ms + ref_l3_ms;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"perf_pipeline\",\n";
  out << "  \"corpus\": {\"days\": 1, \"scale\": "
      << flags.GetDouble("scale", 1.0) << ", \"logs\": " << logs << "},\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"results_match_seed_reference\": "
      << (results_match ? "true" : "false") << ",\n";
  out << "  \"seed_reference_serial\": {\"l2_ms\": " << ref_l2_ms
      << ", \"l3_ms\": " << ref_l3_ms << ", \"l2_plus_l3_ms\": " << ref_total
      << "},\n";
  auto emit_sweep = [&](const char* name, const std::map<int, Sample>& sweep,
                        bool last) {
    out << "  \"" << name << "\": {";
    bool first = true;
    for (const auto& [threads, sample] : sweep) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << threads << "\": ";
      EmitSample(out, sample);
    }
    out << "}" << (last ? "" : ",") << "\n";
  };
  emit_sweep("l1", l1_sweep, false);
  emit_sweep("l2", l2_sweep, false);
  emit_sweep("l3", l3_sweep, false);
  emit_sweep("pipeline", pipeline_sweep, false);
  out << "  \"l1_pruning\": {\"pairs_tested\": " << l1_result.pairs_tested
      << ", \"pairs_pruned\": " << l1_result.pairs_pruned
      << ", \"pruned_fraction\": "
      << (prune_candidates == 0
              ? 0.0
              : static_cast<double>(l1_result.pairs_pruned) /
                    static_cast<double>(prune_candidates))
      << ", \"pruned_ms\": " << l1_sweep[max_threads].ms
      << ", \"unpruned_ms\": " << l1_unpruned_ms
      << ", \"pruned_matches_unpruned\": "
      << (pruned_matches_unpruned ? "true" : "false") << "},\n";
  out << "  \"sweep\": {\"ms\": " << sweep_ms
      << ", \"num_ranges\": " << kSweepRanges
      << ", \"shards\": " << sweep_result.shards.size()
      << ", \"attempts\": " << sweep_result.stats.attempts
      << ", \"outcome\": \"" << eval::SweepOutcomeName(sweep_result.outcome)
      << "\", \"coverage\": " << sweep_result.merged.coverage.fraction()
      << ", \"model_matches_unsharded\": "
      << (sweep_matches_unsharded ? "true" : "false") << "},\n";
  out << "  \"checkpoint\": {\"off_ms\": " << ckpt_off_ms
      << ", \"on_ms\": " << ckpt_on_ms
      << ", \"overhead_ms\": " << ckpt_overhead_ms
      << ", \"overhead_fraction\": " << ckpt_overhead_ms / ckpt_off_ms
      << "},\n";
  out << "  \"obs\": {\"off_ms\": " << obs_off_ms
      << ", \"on_ms\": " << obs_on_ms
      << ", \"overhead_fraction\": " << obs_overhead_fraction
      << ", \"trace_spans\": " << obs_context.trace().total_recorded()
      << ", \"trace_dropped\": " << obs_context.trace().dropped()
      << ", \"journal_events\": " << obs_context.journal().events_emitted()
      << ", \"probe_stages\": " << obs_context.probe().Stages().size()
      << ",\n  \"probe\": " << obs_context.probe().ToJson()
      << ",\n  \"metrics\": " << obs_metrics_json << "},\n";
  auto emit_ingest_sample = [&](const char* name, double ms, bool last) {
    out << "\"" << name << "\": {\"ms\": " << ms << ", \"ns_per_log\": "
        << ms * 1e6 / static_cast<double>(corpus_logs)
        << ", \"mb_per_sec\": " << corpus_mb / (ms / 1e3) << "}"
        << (last ? "" : ", ");
  };
  out << "  \"ingest\": {\"logs\": " << corpus_logs
      << ", \"text_bytes\": " << corpus_text.size()
      << ", \"columnar_bytes\": " << columnar_bytes.size()
      << ", \"hardware_concurrency\": " << hardware_concurrency << ",\n    ";
  emit_ingest_sample("text_decode_serial", text_serial_ms, false);
  emit_ingest_sample("text_decode_chunked", text_chunked_ms, false);
  out << "\n    ";
  emit_ingest_sample("columnar_write", columnar_write_ms, false);
  emit_ingest_sample("columnar_read", columnar_read_ms, true);
  out << ",\n    \"chunked_speedup\": " << chunked_speedup
      << ", \"columnar_read_speedup_vs_text\": " << columnar_read_speedup
      << ",\n    \"parallel_matches_serial\": "
      << (parallel_matches_serial ? "true" : "false")
      << ", \"columnar_roundtrip_ok\": "
      << (columnar_roundtrip_ok ? "true" : "false")
      << ", \"autodetect_ok\": " << (autodetect_ok ? "true" : "false")
      << ", \"columnar_artifact\": \"" << columnar_out << "\"},\n";
  out << "  \"l2_l3_speedup_vs_seed_serial\": {";
  bool first = true;
  for (int threads : kThreadSweep) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << threads << "\": "
        << ref_total / (l2_sweep[threads].ms + l3_sweep[threads].ms);
  }
  out << "}\n";
  out << "}\n";
  out.close();
  std::cerr << "[bench] wrote " << out_path << " (L2+L3 speedup at 8 "
               "threads: "
            << ref_total / (l2_sweep[8].ms + l3_sweep[8].ms) << "x)\n";
  return 0;
}
