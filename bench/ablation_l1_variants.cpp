// Ablation of the §5 refinements to L1: the intensity-proportional
// random baseline ("a non-homogenous process whose intensity is
// proportional to the total number of logs") and adaptive time slots
// ("create time slots adaptively by measuring the degree of
// stationarity"), alone and combined, against the paper's main method.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/1);

  struct Variant {
    const char* name;
    core::L1Config config;
  };
  core::L1Config base;
  base.num_threads = 0;
  core::L1Config intensity = base;
  intensity.baseline = core::L1Baseline::kIntensityProportional;
  core::L1Config adaptive = base;
  adaptive.adaptive_slots = true;
  core::L1Config both = intensity;
  both.adaptive_slots = true;
  const Variant variants[] = {
      {"uniform baseline, fixed 1h slots (paper)", base},
      {"intensity-proportional baseline", intensity},
      {"adaptive slots", adaptive},
      {"both refinements", both},
  };

  std::cout << "L1 variants (day 1 of the standard corpus)\n";
  TablePrinter table({"variant", "TP", "FP", "pos", "tp-ratio"});
  for (const Variant& variant : variants) {
    core::L1ActivityMiner miner(variant.config);
    auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                             dataset.day_end(0));
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const core::ConfusionCounts counts = core::Evaluate(
        result.value().Dependencies(dataset.store), dataset.reference_pairs,
        dataset.universe_pairs);
    table.AddRow({variant.name, std::to_string(counts.true_positives),
                  std::to_string(counts.false_positives),
                  std::to_string(counts.positives()),
                  FormatDouble(counts.tp_ratio(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\n(the intensity baseline mainly suppresses false "
               "positives from shared load bursts; adaptive slots trade "
               "support for stationarity)\n";
  return 0;
}
