// Reproduces Figure 6: positive decisions of method L2 per day with a
// 1-second timeout. The paper reports ~4000 sessions per weekday (~1000
// on the weekend), 7.5-11% of logs assigned to a session, 62-74 correct
// dependencies on weekdays (51/52 on the weekend), 19-25 false positives,
// and a 0.984-level median-TP-ratio CI of [0.71, 0.78].

#include <iostream>

#include "bench/bench_common.h"
#include "eval/daily_runner.h"
#include "eval/report.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  core::L2Config config;  // timeout = 1 s
  std::vector<core::SessionBuildStats> session_stats;
  auto result = eval::RunL2Daily(dataset, config, &session_stats);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure("Figure 6: positive decisions for L2 (timeout=1s)",
                         result.value().series, std::cout);

  std::cout << "\nsession creation (paper: ~4000 weekday / ~1000 weekend "
               "sessions, 7.5-11% of logs assigned):\n";
  TablePrinter table({"day", "#sessions", "%assigned"});
  for (size_t day = 0; day < session_stats.size(); ++day) {
    table.AddRow({result.value().series.day_labels[day],
                  std::to_string(session_stats[day].num_sessions),
                  FormatDouble(session_stats[day].assigned_fraction * 100.0,
                               1)});
  }
  table.Print(std::cout);

  auto ci = result.value().TpRatioCi(0.98);
  if (ci.ok()) {
    std::cout << "\nmedian TP ratio: " << eval::FormatCi(ci.value(), 2)
              << "   (paper: [0.71, 0.78] at level 0.984)\n";
  }
  return 0;
}
