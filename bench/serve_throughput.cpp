// Streaming service throughput: replay a simulated multi-day corpus
// through the serve/ path hour by hour and report ingest and publish
// cost per epoch, plus query latency against the live model. The
// interesting comparison is publish cost vs a full batch re-mine: the
// sliding window only pays for aggregating retained epochs.
//
//   ./serve_throughput [--scale=0.2] [--days=2] [--seed=20051206]
//                      [--window=24] [--queue=8] [--publish-every=1]

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/stream_replay.h"
#include "obs/obs.h"
#include "serve/streaming_service.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const eval::Dataset dataset =
      bench::BuildDatasetOrDie(argc, argv, /*default_scale=*/0.2,
                               /*default_days=*/2);

  obs::ObsContext context;
  serve::ServiceConfig config;
  config.window.epoch_length = kMillisPerHour;
  config.window.window_epochs =
      static_cast<int>(flags.GetInt("window", 24));
  config.window.vocabulary = dataset.vocabulary;
  config.entry_owner = dataset.entry_owner;
  config.max_queue_batches =
      static_cast<size_t>(flags.GetInt("queue", 8));
  config.publish_every_epochs =
      static_cast<int>(flags.GetInt("publish-every", 1));
  config.obs = &context;
  auto service_or = serve::StreamingMiningService::Create(config);
  if (!service_or.ok()) {
    std::cerr << service_or.status() << "\n";
    return 1;
  }
  serve::StreamingMiningService& service = *service_or.value();

  const auto start = std::chrono::steady_clock::now();
  auto report_or = eval::ReplayDatasetStream(dataset, &service);
  if (!report_or.ok()) {
    std::cerr << report_or.status() << "\n";
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const eval::StreamReplayReport& replay = report_or.value();

  // A round of queries against the final generation, timed.
  const std::string target = dataset.entry_owner.empty()
                                 ? std::string("app")
                                 : dataset.entry_owner.begin()->second;
  constexpr int kQueries = 1000;
  const auto query_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueries; ++i) {
    auto result = service.ImpactOf(target);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
  }
  const double query_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - query_start)
          .count() /
      kQueries;

  const obs::MetricsSnapshot metrics = context.metrics().Snapshot();
  const serve::ServiceStats stats = service.stats();
  // Mean latency per observation, in milliseconds (histogram or sketch).
  const auto mean_ms = [&](obs::Metric metric) {
    const obs::MetricsSnapshot::Entry* entry =
        metrics.Find(obs::MetricName(metric));
    if (entry == nullptr) return 0.0;
    return (entry->kind == obs::MetricKind::kSketch ? entry->sketch.mean()
                                                    : entry->hist.mean()) /
           1e6;
  };
  const double per_epoch = mean_ms(obs::Metric::kServeIngestNs);
  const double per_publish = mean_ms(obs::Metric::kServePublishNs);

  TablePrinter table({"metric", "value"});
  table.AddRow({"logs replayed", std::to_string(dataset.store.size())});
  table.AddRow({"epochs fed", std::to_string(replay.batches_fed)});
  table.AddRow({"epochs ingested", std::to_string(stats.epochs_ingested)});
  table.AddRow(
      {"generations published", std::to_string(stats.generations_published)});
  table.AddRow({"wall time (s)", FormatDouble(wall_s, 2)});
  table.AddRow({"epochs / s",
                FormatDouble(double(stats.epochs_ingested) / wall_s, 1)});
  table.AddRow({"ingest ms / epoch", FormatDouble(per_epoch, 3)});
  table.AddRow({"publish ms / generation", FormatDouble(per_publish, 3)});
  table.AddRow({"query us (ImpactOf)", FormatDouble(query_us, 1)});
  table.AddRow({"final health",
                std::string(serve::HealthStateName(
                    replay.final_health.state))});
  table.Print(std::cout);
  return 0;
}
