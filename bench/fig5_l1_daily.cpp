// Reproduces Figure 5: positive decisions of method L1 per day, split
// into true and false positives, with th_pr = 0.6 and th_s = 0.3
// (minlogs = 100, 24 one-hour slots). The paper finds 30-46 TP and 11-22
// FP per day, a 0.984-level median-TP-ratio CI of [0.63, 0.73], and notes
// L1 detects *more* on the weekend (low load helps it).

#include <iostream>

#include "bench/bench_common.h"
#include "eval/daily_runner.h"
#include "eval/report.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  core::L1Config config;  // paper defaults: 1h slots, 0.6/0.3
  config.num_threads = 0;  // parallel slots; results are thread-count invariant
  auto result = eval::RunL1Daily(dataset, config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure(
      "Figure 5: positive decisions for L1 (th_pr=0.6, th_s=0.3)",
      result.value().series, std::cout);

  auto ci = result.value().TpRatioCi(0.98);
  if (ci.ok()) {
    std::cout << "\nmedian TP ratio: " << eval::FormatCi(ci.value(), 2)
              << "   (paper: [0.63, 0.73] at level 0.984)\n";
  }

  // §4.5 also reports the classification error over *unrelated* pairs
  // (25 FP over 1253 unrelated pairs would be ~2%).
  double worst_fpr = 0;
  for (const core::ConfusionCounts& day : result.value().series.days) {
    worst_fpr = std::max(worst_fpr, day.false_positive_rate());
  }
  std::cout << "worst per-day error rate on unrelated pairs: "
            << FormatDouble(worst_fpr * 100, 2) << "% (paper: ~2%)\n";
  return 0;
}
