// Reproduces Table 2: for timeouts 0.3/0.6/0.8/1.0 s versus infinity,
// the per-day differences of TP ratio (positive median, CI strictly
// positive) and of absolute TPs (negative median, CI strictly negative),
// with two-sided Wilcoxon signed-rank p-values (paper: 0.0156 for 7
// same-signed differences).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/timeout_experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  const std::vector<TimeMs> timeouts = {300, 600, 800, 1000};
  core::L2Config config;
  auto experiment =
      eval::RunTimeoutExperiment(dataset, config, timeouts, 0.98);
  if (!experiment.ok()) {
    std::cerr << experiment.status() << "\n";
    return 1;
  }

  std::cout << "Table 2: timeout influence on L2 "
               "(median per-day difference vs infinite timeout; "
               "TP ratio in percentage points)\n";
  TablePrinter table({"to", "tpr_to - tpr_inf [pp]", "tp_to - tp_inf",
                      "wilcoxon p (tpr)", "wilcoxon p (tp)"});
  for (const eval::TimeoutRow& row : experiment.value().rows) {
    table.AddRow(
        {FormatDouble(static_cast<double>(row.timeout) / 1000.0, 1),
         FormatDouble(row.tpr_diff_median * 100, 1) + " (" +
             FormatDouble(row.tpr_diff_lo * 100, 1) + ", " +
             FormatDouble(row.tpr_diff_hi * 100, 1) + ")",
         FormatDouble(row.tp_diff_median, 0) + " (" +
             FormatDouble(row.tp_diff_lo, 0) + ", " +
             FormatDouble(row.tp_diff_hi, 0) + ")",
         FormatDouble(row.wilcoxon_p_tpr, 4),
         FormatDouble(row.wilcoxon_p_tp, 4)});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: tpr diffs ~+4.5..5.4 pp with strictly positive "
               "CIs; tp diffs ~-4..-7 with strictly negative CIs; "
               "p = 0.0156)\n";
  return 0;
}
