// Baseline comparison: L1 (the paper's activity-correlation test) versus
// the Agrawal et al. delay-histogram technique that §1.3/§2.1 position
// as the closest non-intrusive alternative. Per-day detections on the
// standard corpus, plus the load sensitivity of each (the original
// authors report their technique "performs well under low load").

#include <iostream>

#include "bench/bench_common.h"
#include "core/agrawal_miner.h"
#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "log/filter.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/3);

  core::L1Config l1_config;
  l1_config.num_threads = 0;
  core::L1ActivityMiner l1(l1_config);
  core::AgrawalDelayMiner agrawal{core::AgrawalConfig{}};

  std::cout << "L1 vs Agrawal delay histograms, per day\n";
  TablePrinter table({"day", "L1 TP", "L1 FP", "L1 ratio", "Agr TP",
                      "Agr FP", "Agr ratio"});
  for (int day = 0; day < dataset.num_days(); ++day) {
    auto l1_result = l1.Mine(dataset.store, dataset.day_begin(day),
                             dataset.day_end(day));
    auto ag_result = agrawal.Mine(dataset.store, dataset.day_begin(day),
                                  dataset.day_end(day));
    if (!l1_result.ok() || !ag_result.ok()) {
      std::cerr << "mining failed\n";
      return 1;
    }
    const core::ConfusionCounts l1_counts = core::Evaluate(
        l1_result.value().Dependencies(dataset.store),
        dataset.reference_pairs, dataset.universe_pairs);
    const core::ConfusionCounts ag_counts = core::Evaluate(
        ag_result.value().Dependencies(dataset.store),
        dataset.reference_pairs, dataset.universe_pairs);
    table.AddRow({FormatDate(dataset.day_begin(day)),
                  std::to_string(l1_counts.true_positives),
                  std::to_string(l1_counts.false_positives),
                  FormatDouble(l1_counts.tp_ratio(), 2),
                  std::to_string(ag_counts.true_positives),
                  std::to_string(ag_counts.false_positives),
                  FormatDouble(ag_counts.tp_ratio(), 2)});
  }
  table.Print(std::cout);

  // Load sensitivity: hourly recall of both techniques against the
  // static reference, split into low/high-load halves of day 0.
  std::cout << "\nhourly detections at low vs high load (day 1):\n";
  TablePrinter load_table({"window", "#logs", "L1 TP", "L1 FP", "Agr TP",
                           "Agr FP"});
  for (const auto& [label, hour] :
       {std::pair{"night (03-06h)", 3}, std::pair{"peak (09-12h)", 9}}) {
    const TimeMs begin = dataset.day_begin(0) + hour * kMillisPerHour;
    const TimeMs end = begin + 3 * kMillisPerHour;
    auto l1_result = l1.Mine(dataset.store, begin, end);
    auto ag_result = agrawal.Mine(dataset.store, begin, end);
    if (!l1_result.ok() || !ag_result.ok()) return 1;
    int64_t logs = 0;
    for (int64_t c : CountsPerSource(dataset.store, begin, end)) logs += c;
    const core::ConfusionCounts l1_counts = core::Evaluate(
        l1_result.value().Dependencies(dataset.store),
        dataset.reference_pairs, dataset.universe_pairs);
    const core::ConfusionCounts ag_counts = core::Evaluate(
        ag_result.value().Dependencies(dataset.store),
        dataset.reference_pairs, dataset.universe_pairs);
    load_table.AddRow({label, std::to_string(logs),
                       std::to_string(l1_counts.true_positives),
                       std::to_string(l1_counts.false_positives),
                       std::to_string(ag_counts.true_positives),
                       std::to_string(ag_counts.false_positives)});
  }
  load_table.Print(std::cout);
  std::cout << "\n(L1's recall falls with load; the delay-histogram "
               "technique keeps firing at peak but its precision decays "
               "— the parallelism sensitivity its authors report)\n";
  return 0;
}
