// Reproduces Figure 7: positive decisions for L2 on one day (the paper
// uses 12.12.2005, the last day) across different timeout values. The
// shape to reproduce: a timeout that is neither too small nor too big
// maximizes the TP ratio, while large/infinite timeouts maximize the
// absolute number of TPs.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/timeout_experiment.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  const std::vector<TimeMs> timeouts = {100, 200,  300,  600, 800,
                                        1000, 1500, 3000, 0 /*infinity*/};
  core::L2Config config;
  auto sweep = eval::RunTimeoutSweepOneDay(dataset, config,
                                           dataset.num_days() - 1, timeouts);
  if (!sweep.ok()) {
    std::cerr << sweep.status() << "\n";
    return 1;
  }
  std::cout << "Figure 7: L2 positives on " << FormatDate(dataset.day_begin(
                   dataset.num_days() - 1))
            << " for different timeout values\n";
  TablePrinter table({"timeout [s]", "TP", "FP", "pos", "tp-ratio"});
  for (size_t i = 0; i < timeouts.size(); ++i) {
    const core::ConfusionCounts& counts = sweep.value()[i];
    table.AddRow(
        {timeouts[i] == 0 ? "inf"
                          : FormatDouble(static_cast<double>(timeouts[i]) /
                                             1000.0,
                                         1),
         std::to_string(counts.true_positives),
         std::to_string(counts.false_positives),
         std::to_string(counts.positives()), FormatDouble(counts.tp_ratio(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: moderate timeouts raise the TP ratio; infinity "
               "maximizes absolute TPs)\n";
  return 0;
}
