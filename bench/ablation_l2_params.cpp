// Ablation: L2 design choices — the association test (Dunning's G^2 vs
// Pearson's X^2, §3.2's motivation), the significance level, and the
// evidence floor. One day of the standard corpus.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "core/l2_cooccurrence_miner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace logmine;

core::ConfusionCounts Run(const eval::Dataset& dataset,
                          const core::L2Config& config) {
  core::L2CooccurrenceMiner miner(config);
  auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                           dataset.day_end(0));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::exit(1);
  }
  return core::Evaluate(result.value().Dependencies(dataset.store),
                        dataset.reference_pairs, dataset.universe_pairs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/1);
  const core::L2Config base;

  std::cout << "\nablation: association test (Dunning vs Pearson)\n";
  TablePrinter tests({"test", "TP", "FP", "pos", "tp-ratio"});
  for (auto [test, label] :
       {std::pair{core::AssociationTest::kDunning, "Dunning G^2"},
        std::pair{core::AssociationTest::kPearson, "Pearson X^2"}}) {
    core::L2Config config = base;
    config.test = test;
    const core::ConfusionCounts counts = Run(dataset, config);
    tests.AddRow({label, std::to_string(counts.true_positives),
                  std::to_string(counts.false_positives),
                  std::to_string(counts.positives()),
                  FormatDouble(counts.tp_ratio(), 2)});
  }
  tests.Print(std::cout);

  std::cout << "\nablation: significance level alpha\n";
  TablePrinter alphas({"alpha", "TP", "FP", "pos", "tp-ratio"});
  for (double alpha : {0.05, 0.01, 0.001, 0.0001}) {
    core::L2Config config = base;
    config.alpha = alpha;
    const core::ConfusionCounts counts = Run(dataset, config);
    alphas.AddRow({FormatDouble(alpha, 4),
                   std::to_string(counts.true_positives),
                   std::to_string(counts.false_positives),
                   std::to_string(counts.positives()),
                   FormatDouble(counts.tp_ratio(), 2)});
  }
  alphas.Print(std::cout);

  std::cout << "\nablation: evidence floor (min co-occurrences per session)\n";
  TablePrinter floors({"per-session floor", "TP", "FP", "pos", "tp-ratio"});
  for (double floor : {0.0, 0.02, 0.045, 0.1, 0.2}) {
    core::L2Config config = base;
    config.min_cooccurrence_per_session = floor;
    config.min_cooccurrence = floor == 0.0 ? 1 : config.min_cooccurrence;
    const core::ConfusionCounts counts = Run(dataset, config);
    floors.AddRow({FormatDouble(floor, 3),
                   std::to_string(counts.true_positives),
                   std::to_string(counts.false_positives),
                   std::to_string(counts.positives()),
                   FormatDouble(counts.tp_ratio(), 2)});
  }
  floors.Print(std::cout);

  std::cout << "\nablation: session inactivity gap\n";
  TablePrinter gaps({"max gap [min]", "TP", "FP", "pos", "tp-ratio"});
  for (TimeMs gap : {5 * kMillisPerMinute, 15 * kMillisPerMinute,
                     30 * kMillisPerMinute, 120 * kMillisPerMinute}) {
    core::L2Config config = base;
    config.session.max_gap = gap;
    const core::ConfusionCounts counts = Run(dataset, config);
    gaps.AddRow({FormatDouble(static_cast<double>(gap) / kMillisPerMinute, 0),
                 std::to_string(counts.true_positives),
                 std::to_string(counts.false_positives),
                 std::to_string(counts.positives()),
                 FormatDouble(counts.tp_ratio(), 2)});
  }
  gaps.Print(std::cout);
  return 0;
}
