#ifndef LOGMINE_BENCH_BENCH_COMMON_H_
#define LOGMINE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>

#include "eval/dataset.h"
#include "util/cli.h"

namespace logmine::bench {

/// Parses the standard bench flags (--scale, --days, --seed) and builds
/// the HUG dataset; exits the process on error. Defaults reproduce the
/// full 7-day experiment at ~1/30 of HUG's production volume.
inline eval::Dataset BuildDatasetOrDie(int argc, char** argv,
                                       double default_scale = 1.0,
                                       int default_days = 7) {
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    std::exit(1);
  }
  eval::DatasetConfig config;
  config.scenario.seed = static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  config.simulation.seed = config.scenario.seed + 1;
  config.simulation.scale = flags.GetDouble("scale", default_scale);
  config.simulation.num_days =
      static_cast<int>(flags.GetInt("days", default_days));

  std::cerr << "[bench] generating corpus: scale="
            << config.simulation.scale << " days="
            << config.simulation.num_days << " seed=" << config.scenario.seed
            << "\n";
  auto dataset = eval::BuildDataset(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    std::exit(1);
  }
  std::cerr << "[bench] " << dataset.value().store.size() << " logs, "
            << dataset.value().reference_pairs.size() << " true app pairs, "
            << dataset.value().reference_services.size()
            << " true app-service deps\n";
  return std::move(dataset).value();
}

}  // namespace logmine::bench

#endif  // LOGMINE_BENCH_BENCH_COMMON_H_
