// Ablation: sensitivity of L1 to its three parameters — the decision
// thresholds th_pr / th_s ("defined after preliminary experience") and
// the minlogs activity floor. One day of the standard corpus; for each
// setting we report TP / FP / tp-ratio so the chosen operating point
// (th_pr = 0.6, th_s = 0.3) can be judged against its neighbourhood.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluation.h"
#include "core/l1_activity_miner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace logmine;

core::ConfusionCounts Run(const eval::Dataset& dataset,
                          const core::L1Config& config) {
  core::L1ActivityMiner miner(config);
  auto result = miner.Mine(dataset.store, dataset.day_begin(0),
                           dataset.day_end(0));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::exit(1);
  }
  return core::Evaluate(result.value().Dependencies(dataset.store),
                        dataset.reference_pairs, dataset.universe_pairs);
}

void Sweep(const eval::Dataset& dataset, const std::string& name,
           const std::vector<core::L1Config>& configs,
           const std::vector<std::string>& labels) {
  std::cout << "\nablation: " << name << "\n";
  TablePrinter table({name, "TP", "FP", "pos", "tp-ratio"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const core::ConfusionCounts counts = Run(dataset, configs[i]);
    table.AddRow({labels[i], std::to_string(counts.true_positives),
                  std::to_string(counts.false_positives),
                  std::to_string(counts.positives()),
                  FormatDouble(counts.tp_ratio(), 2)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv,
                                                   /*default_scale=*/1.0,
                                                   /*default_days=*/1);
  core::L1Config base;
  base.num_threads = 0;

  {
    std::vector<core::L1Config> configs;
    std::vector<std::string> labels;
    for (double th_pr : {0.3, 0.45, 0.6, 0.75, 0.9}) {
      core::L1Config config = base;
      config.th_pr = th_pr;
      configs.push_back(config);
      labels.push_back(FormatDouble(th_pr, 2));
    }
    Sweep(dataset, "th_pr", configs, labels);
  }
  {
    std::vector<core::L1Config> configs;
    std::vector<std::string> labels;
    for (double th_s : {0.1, 0.2, 0.3, 0.5, 0.7}) {
      core::L1Config config = base;
      config.th_s = th_s;
      configs.push_back(config);
      labels.push_back(FormatDouble(th_s, 2));
    }
    Sweep(dataset, "th_s", configs, labels);
  }
  {
    std::vector<core::L1Config> configs;
    std::vector<std::string> labels;
    for (int64_t minlogs : {10, 30, 60, 100, 200}) {
      core::L1Config config = base;
      config.minlogs = minlogs;
      configs.push_back(config);
      labels.push_back(std::to_string(minlogs));
    }
    Sweep(dataset, "minlogs", configs, labels);
  }
  {
    std::vector<core::L1Config> configs;
    std::vector<std::string> labels;
    for (TimeMs slot : {30 * kMillisPerMinute, kMillisPerHour,
                        2 * kMillisPerHour, 6 * kMillisPerHour}) {
      core::L1Config config = base;
      config.slot_length = slot;
      configs.push_back(config);
      labels.push_back(FormatDouble(
          static_cast<double>(slot) / kMillisPerHour, 1) + "h");
    }
    Sweep(dataset, "slot length", configs, labels);
  }
  std::cout << "\n(expected: precision peaks near the paper's operating "
               "point; very long slots lose the local-stationarity "
               "protection and admit load-driven correlations)\n";
  return 0;
}
