// Reproduces Table 1: number of logs per day over the 7-day test period
// (Dec 6-12, 2005), with the weekend dip. The paper reports (in millions)
// 10.3 / 9.4 / 9.4 / 9.9 / 3.7 / 3.4 / 10.7; our corpus is volume-scaled
// but must show the same weekday/weekend shape (weekend ~ 1/3).

#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  eval::Dataset dataset = bench::BuildDatasetOrDie(argc, argv);

  std::cout << "Table 1: days in test period with number of logs\n";
  TablePrinter table({"day", "weekday", "#logs", "#logs [relative]"});
  const char* kDows[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  int64_t weekday_total = 0, weekend_total = 0;
  int weekdays = 0, weekend_days = 0;
  int64_t max_logs = 1;
  for (int64_t n : dataset.summary.logs_per_day) {
    max_logs = std::max(max_logs, n);
  }
  for (int day = 0; day < dataset.num_days(); ++day) {
    const TimeMs begin = dataset.day_begin(day);
    const int64_t logs =
        dataset.summary.logs_per_day[static_cast<size_t>(day)];
    table.AddRow({FormatDate(begin), kDows[DayOfWeek(begin)],
                  std::to_string(logs),
                  FormatDouble(static_cast<double>(logs) /
                                   static_cast<double>(max_logs),
                               2)});
    if (IsWeekend(begin)) {
      weekend_total += logs;
      ++weekend_days;
    } else {
      weekday_total += logs;
      ++weekdays;
    }
  }
  table.Print(std::cout);

  if (weekdays > 0 && weekend_days > 0) {
    const double weekday_mean =
        static_cast<double>(weekday_total) / weekdays;
    const double weekend_mean =
        static_cast<double>(weekend_total) / weekend_days;
    std::cout << "\nweekday mean: " << FormatDouble(weekday_mean, 0)
              << "  weekend mean: " << FormatDouble(weekend_mean, 0)
              << "  ratio: " << FormatDouble(weekend_mean / weekday_mean, 2)
              << "  (paper: ~9.9M vs ~3.55M, ratio 0.36)\n";
  }
  std::cout << "total: " << dataset.store.size()
            << " logs (paper: 56.8M at full production volume)\n";
  return 0;
}
