// End-to-end fault localization — the paper's §1.1 motivation for
// dependency models, closed into a loop: (1) mine the model from normal
// operation with L3, (2) inject an outage of one backend, (3) detect
// the symptomatic applications from their error rates, (4) rank root
// causes on the mined graph. The failed component must rank first.
//
//   ./fault_localization [--victim=PatientDB] [--scale=0.3] [--seed=...]

#include <iostream>

#include "core/impact_analysis.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "log/filter.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const std::string victim_name = flags.GetString("victim", "PatientDB");

  // Scenario and a one-day simulation with the victim down 14:00-15:00.
  sim::HugScenarioConfig scenario_config;
  scenario_config.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  auto scenario = sim::BuildHugScenario(scenario_config);
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    return 1;
  }
  const int victim = scenario.value().topology.FindApp(victim_name);
  if (victim < 0) {
    std::cerr << "unknown application: " << victim_name << "\n";
    return 1;
  }
  sim::SimulationConfig sim_config;
  sim_config.seed = scenario_config.seed + 1;
  sim_config.num_days = 1;
  sim_config.scale = flags.GetDouble("scale", 0.3);
  const TimeMs start = sim::DefaultSimulationStart();
  const TimeMs outage_begin = start + 14 * kMillisPerHour;
  const TimeMs outage_end = outage_begin + kMillisPerHour;
  sim_config.failures.push_back(
      sim::FailureWindow{victim, outage_begin, outage_end});

  sim::Simulator simulator(scenario.value().topology,
                           scenario.value().directory, sim_config);
  LogStore store;
  if (Status s = simulator.Run(&store, nullptr); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "corpus: " << store.size() << " logs; outage of "
            << victim_name << " injected " << FormatTime(outage_begin)
            << " .. " << FormatTime(outage_end) << "\n\n";

  // (1) Mine the dependency model from *before* the outage.
  const core::ServiceVocabulary vocabulary =
      eval::VocabularyFrom(scenario.value().directory);
  core::L3TextMiner miner(vocabulary, core::L3Config{});
  auto mined = miner.Mine(store, start, outage_begin);
  if (!mined.ok()) {
    std::cerr << mined.status() << "\n";
    return 1;
  }
  std::map<std::string, std::string> entry_owner;
  for (const sim::Application& app : scenario.value().topology.apps) {
    for (int entry : app.provided_entries) {
      entry_owner[scenario.value()
                      .directory.entry(static_cast<size_t>(entry))
                      .id] = app.name;
    }
  }
  const core::DependencyGraph graph = core::DependencyGraph::FromAppServiceModel(
      mined.value().Dependencies(store, vocabulary), entry_owner);
  std::cout << "mined dependency graph: " << graph.num_nodes()
            << " components, " << graph.num_edges() << " directed edges\n";

  // (2) Detect symptomatic applications: error-rate spike in the outage
  // window relative to the morning baseline.
  std::map<LogStore::SourceId, std::pair<int64_t, int64_t>> window_counts;
  std::map<LogStore::SourceId, std::pair<int64_t, int64_t>> base_counts;
  for (uint32_t idx : IndicesInRange(store, start + 8 * kMillisPerHour,
                                     outage_begin)) {
    auto& [errors, total] = base_counts[store.source_id(idx)];
    errors += store.severity(idx) == Severity::kError;
    ++total;
  }
  for (uint32_t idx : IndicesInRange(store, outage_begin, outage_end)) {
    auto& [errors, total] = window_counts[store.source_id(idx)];
    errors += store.severity(idx) == Severity::kError;
    ++total;
  }
  std::set<std::string> symptomatic;
  for (const auto& [source, counts] : window_counts) {
    const auto& [errors, total] = counts;
    if (total < 10 || errors < 3) continue;
    const double window_rate =
        static_cast<double>(errors) / static_cast<double>(total);
    const auto& [base_errors, base_total] = base_counts[source];
    const double base_rate =
        base_total == 0 ? 0.0
                        : static_cast<double>(base_errors) /
                              static_cast<double>(base_total);
    if (window_rate > 5 * base_rate + 0.02) {
      symptomatic.insert(std::string(store.source_name(source)));
    }
  }
  std::cout << "symptomatic during the outage: "
            << Join({symptomatic.begin(), symptomatic.end()}, ", ")
            << "\n\n";

  // (3) Rank root causes on the mined graph.
  const auto ranking = core::RankRootCauses(graph, symptomatic);
  std::cout << "root cause ranking:\n";
  TablePrinter table({"rank", "component", "coverage", "direct", "blast radius"});
  for (size_t i = 0; i < std::min<size_t>(ranking.size(), 5); ++i) {
    table.AddRow({std::to_string(i + 1), ranking[i].component,
                  FormatDouble(ranking[i].coverage, 2),
                  FormatDouble(ranking[i].direct_coverage, 2),
                  std::to_string(ranking[i].blast_radius)});
  }
  table.Print(std::cout);
  const bool localized =
      !ranking.empty() && ranking[0].component == victim_name;
  std::cout << "\nfailed component ranked first: "
            << (localized ? "YES" : "NO") << "\n";

  // Bonus: the mined graph also answers impact questions (§1.1).
  const auto impact = graph.ImpactSet(victim_name);
  std::cout << "predicted impact set of " << victim_name << ": "
            << impact.size() << " components\n";
  return localized ? 0 : 1;
}
