// Dependency-model export: mines a corpus with L3, writes the discovered
// model as Graphviz DOT and the service directory as XML, and
// round-trips a sample of the corpus through the line codec — the
// interchange formats a downstream user of the library would consume.
//
//   ./graph_export [--out=/tmp] [--scale=0.1]

#include <fstream>
#include <iostream>

#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "log/codec.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const std::string out_dir = flags.GetString("out", "/tmp");

  eval::DatasetConfig config;
  config.simulation.num_days = 1;
  config.simulation.scale = flags.GetDouble("scale", 0.1);
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();

  // Mine and export the discovered model.
  core::L3TextMiner miner(dataset.vocabulary, core::L3Config{});
  auto result = miner.Mine(dataset.store, dataset.store.min_ts(),
                           dataset.store.max_ts() + 1);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  const core::DependencyModel model =
      result.value().Dependencies(dataset.store, dataset.vocabulary);

  const std::string dot_path = out_dir + "/dependency_model.dot";
  std::ofstream dot(dot_path);
  dot << model.ToDot("dependencies", /*directed=*/true);
  dot.close();
  std::cout << "wrote " << model.size() << " dependencies to " << dot_path
            << "\n";

  // Export the service directory in the HUG-style XML shape.
  const std::string xml_path = out_dir + "/service_directory.xml";
  std::ofstream xml(xml_path);
  xml << dataset.scenario.directory.ToXml();
  xml.close();
  std::cout << "wrote " << dataset.scenario.directory.size()
            << " directory entries to " << xml_path << "\n";

  // Round-trip a corpus sample through the line format.
  std::vector<LogRecord> sample;
  for (size_t i = 0; i < std::min<size_t>(dataset.store.size(), 1000); ++i) {
    sample.push_back(dataset.store.GetRecord(i));
  }
  const std::string log_path = out_dir + "/corpus_sample.log";
  std::ofstream logs(log_path);
  logs << LineCodec::EncodeAll(sample);
  logs.close();

  std::ifstream back(log_path);
  std::string text((std::istreambuf_iterator<char>(back)),
                   std::istreambuf_iterator<char>());
  auto decoded = LineCodec::DecodeAll(text);
  if (!decoded.ok()) {
    std::cerr << "round-trip failed: " << decoded.status() << "\n";
    return 1;
  }
  if (decoded.value().size() != sample.size() ||
      !(decoded.value() == sample)) {
    std::cerr << "round-trip mismatch\n";
    return 1;
  }
  std::cout << "round-tripped " << sample.size() << " records through "
            << log_path << "\n";
  return 0;
}
