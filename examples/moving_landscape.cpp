// The paper's title motif, demonstrated end to end: the landscape moves
// while you watch it. We evolve the topology mid-study — a new
// integration goes live on day 4, an old interface is decommissioned
// after day 3 — regenerate logs, mine each half of the week with L3, and
// diff the two discovered models. The automated pipeline spots both
// changes; a manually maintained model would silently go stale.
//
//   ./moving_landscape [--scale=0.3] [--seed=...]

#include <iostream>

#include "core/l3_text_miner.h"
#include "core/model_tracker.h"
#include "eval/dataset.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Build the scenario, then move the landscape: pick one reliable edge
  // to appear on day 4 and another to disappear after day 3.
  sim::HugScenarioConfig scenario_config;
  scenario_config.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  auto scenario_or = sim::BuildHugScenario(scenario_config);
  if (!scenario_or.ok()) {
    std::cerr << scenario_or.status() << "\n";
    return 1;
  }
  sim::HugScenario scenario = std::move(scenario_or).value();

  int added_edge = -1, removed_edge = -1;
  for (size_t e = 0; e < scenario.topology.edges.size(); ++e) {
    const sim::InvocationEdge& edge = scenario.topology.edges[e];
    if (edge.cited_entry < 0 || !edge.logged_by_caller ||
        !edge.miscited_id.empty() || edge.weight < 1.0) {
      continue;
    }
    if (added_edge < 0) {
      added_edge = static_cast<int>(e);
    } else if (removed_edge < 0 &&
               scenario.topology.edges[e].caller !=
                   scenario.topology.edges[static_cast<size_t>(added_edge)]
                       .caller) {
      removed_edge = static_cast<int>(e);
      break;
    }
  }
  if (added_edge < 0 || removed_edge < 0) {
    std::cerr << "no suitable edges found\n";
    return 1;
  }
  scenario.topology.edges[static_cast<size_t>(added_edge)].active_from_day =
      4;
  scenario.topology.edges[static_cast<size_t>(removed_edge)]
      .active_until_day = 3;

  auto describe = [&](int e) {
    const sim::InvocationEdge& edge =
        scenario.topology.edges[static_cast<size_t>(e)];
    return scenario.topology.apps[static_cast<size_t>(edge.caller)].name +
           " -> " +
           scenario.directory.entry(static_cast<size_t>(edge.cited_entry))
               .id;
  };
  std::cout << "landscape changes planted:\n  goes live on day 4:      "
            << describe(added_edge) << "\n  decommissioned after day 3: "
            << describe(removed_edge) << "\n\n";

  // Generate the 7-day corpus over the evolving topology.
  sim::SimulationConfig sim_config;
  sim_config.seed = scenario_config.seed + 1;
  sim_config.scale = flags.GetDouble("scale", 0.3);
  sim::Simulator simulator(scenario.topology, scenario.directory,
                           sim_config);
  LogStore store;
  if (Status s = simulator.Run(&store, nullptr); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Mine each half of the week independently with L3.
  const core::ServiceVocabulary vocabulary =
      eval::VocabularyFrom(scenario.directory);
  core::L3TextMiner miner(vocabulary, core::L3Config{});
  const TimeMs start = sim_config.start == 0 ? sim::DefaultSimulationStart()
                                             : sim_config.start;
  auto first_half = miner.Mine(store, start, start + 3 * kMillisPerDay);
  auto second_half =
      miner.Mine(store, start + 4 * kMillisPerDay, start + 7 * kMillisPerDay);
  if (!first_half.ok() || !second_half.ok()) {
    std::cerr << "mining failed\n";
    return 1;
  }
  const core::DependencyModel before =
      first_half.value().Dependencies(store, vocabulary);
  const core::DependencyModel after =
      second_half.value().Dependencies(store, vocabulary);

  std::cout << "model from days 1-3: " << before.size()
            << " dependencies; days 5-7: " << after.size() << "\n\n";
  std::cout << "dependencies that appeared:\n";
  for (const core::NamePair& pair : after.Minus(before)) {
    std::cout << "  + " << pair.first << " -> " << pair.second << "\n";
  }
  std::cout << "dependencies that disappeared:\n";
  for (const core::NamePair& pair : before.Minus(after)) {
    std::cout << "  - " << pair.first << " -> " << pair.second << "\n";
  }
  std::cout << "\n(the planted changes must appear above; a few extra "
               "lines are weekday/weekend realization noise)\n";

  // Continuous tracking: feed the tracker one mined model per day. The
  // hysteresis separates landscape movement from day-to-day mining
  // noise (weekends, rarely exercised interfaces).
  std::cout << "\ncontinuous tracking (confirm after 2 days, retire after "
               "3 unseen):\n";
  core::ModelTrackerConfig tracker_config;
  tracker_config.confirm_after = 2;
  tracker_config.stale_after = 1;
  tracker_config.retire_after = 3;
  core::ModelTracker tracker(tracker_config);
  const std::string added_name = describe(added_edge);
  const std::string removed_name = describe(removed_edge);
  for (int day = 0; day < 7; ++day) {
    auto daily = miner.Mine(store, start + day * kMillisPerDay,
                            start + (day + 1) * kMillisPerDay);
    if (!daily.ok()) {
      std::cerr << daily.status() << "\n";
      return 1;
    }
    const core::ModelUpdate update =
        tracker.Observe(daily.value().Dependencies(store, vocabulary));
    std::cout << "  day " << day + 1 << ": model size "
              << tracker.ActiveModel().size() << ", +"
              << update.confirmed.size() << " confirmed, -"
              << update.retired.size() << " retired";
    for (const core::NamePair& pair : update.confirmed) {
      if (pair.first + " -> " + pair.second == added_name) {
        std::cout << "   [new integration confirmed: " << added_name << "]";
      }
    }
    for (const core::NamePair& pair : update.retired) {
      if (pair.first + " -> " + pair.second == removed_name) {
        std::cout << "   [decommission detected: " << removed_name << "]";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
