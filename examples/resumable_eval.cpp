// Resumable evaluation: run the multi-day L1/L2/L3 sweep with
// checkpointing, optionally dying at a named kill point, and resume.
// Run it twice with the same --ckpt dir to watch recovery happen:
//
//   ./resumable_eval --ckpt=/tmp/ckpt --kill=after-checkpoint --at=0
//   ./resumable_eval --ckpt=/tmp/ckpt
//
// The second invocation loads the surviving generations, re-mines only
// what is missing, and finishes with the exact result an uninterrupted
// run would have produced (the crash_recovery integration test asserts
// byte-identity). Other flags: --days=2 --scale=0.1 --seed=7
// --no-l1 (skip the slowest technique).

#include <iostream>

#include "eval/dataset.h"
#include "eval/resumable_runner.h"
#include "simulation/crash_injector.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  eval::DatasetConfig dataset_config;
  dataset_config.scenario.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 7));
  dataset_config.simulation.seed = dataset_config.scenario.seed + 1;
  dataset_config.simulation.num_days =
      static_cast<int>(flags.GetInt("days", 2));
  dataset_config.simulation.scale = flags.GetDouble("scale", 0.1);
  auto dataset_or = eval::BuildDataset(dataset_config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << "Corpus: " << dataset.store.size() << " logs over "
            << dataset.num_days() << " days\n";

  eval::SweepConfig sweep;
  sweep.run_l1 = !flags.GetBool("no-l1", false);
  sweep.l1.minlogs = 8;  // support floor scaled to the reduced volume
  eval::ResumableOptions options;
  options.checkpoint.dir = flags.GetString("ckpt", "");
  if (options.checkpoint.dir.empty()) {
    std::cout << "No --ckpt directory: checkpointing disabled\n";
  }

  // An armed kill point simulates the crash the recovery layer exists
  // for; the process really exits non-zero, like a kill -9 would.
  sim::CrashInjector injector{sim::CrashPlan{}};
  const std::string kill = flags.GetString("kill", "");
  if (!kill.empty()) {
    auto point = sim::KillPointFromName(kill);
    if (!point.ok()) {
      std::cerr << point.status() << "\n";
      return 1;
    }
    injector = sim::CrashInjector(sim::CrashPlan{
        point.value(), static_cast<int>(flags.GetInt("at", 0))});
    options.crash = &injector;
  }

  auto sweep_or = eval::RunSweepResumable(dataset, sweep, options);
  if (!sweep_or.ok()) {
    std::cerr << "sweep died: " << sweep_or.status() << "\n"
              << "rerun with the same --ckpt (and no --kill) to resume\n";
    return 2;
  }
  const eval::SweepResult& result = sweep_or.value();

  auto report = [](const char* name,
                   const std::optional<eval::ResumableDailyResult>& run) {
    if (!run.has_value()) {
      std::cout << name << ": skipped\n";
      return;
    }
    const eval::ResumeInfo& resume = run->resume;
    std::cout << name << ": " << resume.days_loaded
              << " days loaded from checkpoint, " << resume.days_mined
              << " mined now, " << resume.snapshots_written
              << " snapshots written";
    if (resume.generations_discarded > 0) {
      std::cout << ", " << resume.generations_discarded
                << " corrupt generations discarded";
    }
    if (!resume.resumed_from.empty()) {
      std::cout << "\n    resumed from " << resume.resumed_from;
    }
    std::cout << "\n    model: " << run->tracker.ActiveModel().size()
              << " tracked dependencies after "
              << run->tracker.num_observations() << " daily observations\n";
  };
  report("L1", result.l1);
  report("L2", result.l2);
  report("L3", result.l3);
  return 0;
}
