// Observability tour: run the HUG-scenario pipeline with a fully wired
// ObsContext, print the metrics registry as an aligned text report, and
// export the flight recorder as Chrome trace_event JSON. Open the trace
// in chrome://tracing or https://ui.perfetto.dev to see the per-miner
// spans nested under the pipeline run.
//
//   ./obs_demo [--scale=0.1] [--days=1] [--seed=7] [--trace=trace.json]

#include <iostream>

#include "core/pipeline.h"
#include "eval/dataset.h"
#include "log/codec.h"
#include "obs/obs.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 1. One context for the whole process. Installing it globally makes
  // every layer report into it — the codec, the store, each miner, the
  // executor — not just the code we pass it to explicitly.
  obs::ObsContext context;
  obs::ScopedGlobalObs scoped(&context);

  // 2. Generate a day of hospital logs and round-trip them through the
  // line codec so the ingest counters have something to say.
  eval::DatasetConfig config;
  config.scenario.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.simulation.seed = config.scenario.seed + 1;
  config.simulation.scale = flags.GetDouble("scale", 0.1);
  config.simulation.num_days = static_cast<int>(flags.GetInt("days", 1));
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << "Mining " << dataset.store.size() << " logs from "
            << dataset.store.num_sources() << " applications ...\n\n";

  std::vector<LogRecord> records;
  records.reserve(dataset.store.size());
  for (size_t i = 0; i < dataset.store.size(); ++i) {
    records.push_back(dataset.store.GetRecord(i));
  }
  if (auto decoded = LineCodec::DecodeAll(LineCodec::EncodeAll(records));
      !decoded.ok()) {
    std::cerr << decoded.status() << "\n";
    return 1;
  }

  // 3. Run the pipeline with the context passed explicitly as well: the
  // result then carries its own metrics snapshot.
  core::MiningPipeline pipeline(dataset.vocabulary, core::PipelineConfig{});
  auto result = pipeline.Run(dataset.store, dataset.day_begin(0),
                             dataset.day_end(0), nullptr, &context);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  // 4. The text report: every non-zero counter, gauge and histogram.
  std::cout << result.value().metrics->ToText();

  // 5. The trace: one complete ("X") event per span.
  const std::string trace_path = flags.GetString("trace", "trace.json");
  if (Status s = context.trace().WriteChromeTrace(trace_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "\nwrote " << trace_path << " ("
            << context.trace().Events().size() << " spans, "
            << context.trace().dropped()
            << " dropped) - load it in chrome://tracing\n";
  return 0;
}
