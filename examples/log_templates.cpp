// Message-template mining with SLCT (Vaarandi 2003), the preprocessing
// step §2.2/§5 suggest for classifying an application's log messages
// before dependency mining: cluster one application's free text into
// templates and show the outlier share.
//
//   ./log_templates [--app=DPIPublication] [--scale=0.1]

#include <iostream>

#include "eval/dataset.h"
#include "log/slct.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  eval::DatasetConfig config;
  config.simulation.num_days = 1;
  config.simulation.scale = flags.GetDouble("scale", 0.1);
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();

  const std::string app = flags.GetString("app", "DPIPublication");
  auto source = dataset.store.FindSource(app);
  if (!source.ok()) {
    std::cerr << "unknown application: " << app << "\n";
    return 1;
  }

  SlctClusterer clusterer(SlctConfig{.support = 15, .max_words = 24});
  const SlctResult result = clusterer.ClusterSource(
      dataset.store, source.value(), dataset.store.min_ts(),
      dataset.store.max_ts() + 1);

  std::cout << "SLCT templates for " << app << " (" << result.messages
            << " messages, " << result.outliers << " outliers)\n";
  TablePrinter table({"count", "template"});
  for (size_t i = 0; i < std::min<size_t>(result.templates.size(), 15); ++i) {
    table.AddRow({std::to_string(result.templates[i].count),
                  result.templates[i].ToString()});
  }
  table.Print(std::cout);
  if (result.templates.size() > 15) {
    std::cout << "... and " << result.templates.size() - 15
              << " more templates\n";
  }
  std::cout << "\n(templates citing service ids are invocation logs — the "
               "signal L3 keys on; the rest is processing chatter)\n";
  return 0;
}
