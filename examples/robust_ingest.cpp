// Robust ingest: generate a clean corpus, corrupt it at a configurable
// rate, re-ingest it leniently under an error budget, and mine whatever
// survives — the full damaged-corpus spine (DESIGN.md §8).
//
//   ./robust_ingest [--rate=0.1] [--budget=0.2] [--scale=0.1] [--seed=7]

#include <iostream>
#include <vector>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "eval/dataset.h"
#include "log/codec.h"
#include "simulation/corruptor.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const double rate = flags.GetDouble("rate", 0.1);
  const double budget = flags.GetDouble("budget", 0.2);

  // 1. A clean simulated corpus, serialized to the line format.
  eval::DatasetConfig config;
  config.scenario.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.simulation.seed = config.scenario.seed + 1;
  config.simulation.scale = flags.GetDouble("scale", 0.1);
  config.simulation.num_days = 1;
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  eval::Dataset dataset = std::move(dataset_or).value();
  std::vector<LogRecord> records;
  records.reserve(dataset.store.size());
  for (uint32_t idx : dataset.store.TimeOrder()) {
    records.push_back(dataset.store.GetRecord(idx));
  }
  const std::string clean_text = LineCodec::EncodeAll(records);
  std::cout << "Clean corpus: " << dataset.store.size() << " logs\n";

  // 2. Damage it, deterministically.
  sim::CorruptorConfig corruptor_config;
  corruptor_config.rate = rate;
  Rng rng(config.scenario.seed + 2);
  sim::CorruptionReport report;
  const std::string corrupted =
      sim::CorruptCorpusText(clean_text, corruptor_config, &rng, &report);
  std::cout << report.ToString() << "\n\n";

  // 3. Lenient ingest under an error budget.
  DecodeOptions options;
  options.policy = DecodePolicy::kQuarantine;
  options.max_bad_fraction = budget;
  IngestStats stats;
  auto decoded = LineCodec::DecodeAll(corrupted, options, &stats);
  std::cout << stats.ToString() << "\n\n";
  if (!decoded.ok()) {
    std::cerr << "ingest refused the corpus: " << decoded.status() << "\n";
    return 1;
  }
  LogStore store;
  for (const LogRecord& record : decoded.value()) {
    if (Status s = store.Append(record); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  store.BuildIndex();

  // 4. Mine the surviving records; report per-miner outcomes.
  core::PipelineConfig pipeline_config;
  core::MiningPipeline pipeline(dataset.vocabulary, pipeline_config);
  auto result_or =
      pipeline.Run(store, dataset.day_begin(0), dataset.day_end(0));
  if (!result_or.ok()) {
    std::cerr << result_or.status() << "\n";
    return 1;
  }
  const core::PipelineResult& result = result_or.value();
  auto report_miner = [&](const char* name, const Status& status,
                          bool present) {
    std::cout << name << ": "
              << (status.ok() ? (present ? "ok" : "disabled")
                              : status.ToString())
              << "\n";
  };
  report_miner("L1", result.l1_status, result.l1.has_value());
  report_miner("L2", result.l2_status, result.l2.has_value());
  report_miner("L3", result.l3_status, result.l3.has_value());

  if (result.l3.has_value()) {
    const core::ConfusionCounts counts = core::Evaluate(
        result.l3->Dependencies(store, dataset.vocabulary),
        dataset.reference_services, dataset.universe_services);
    std::cout << "\nL3 on the damaged corpus: precision="
              << counts.precision() << " recall=" << counts.recall()
              << " (vs the clean-run reference model)\n";
  }
  return result.all_ok() ? 0 : 2;
}
