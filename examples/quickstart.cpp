// Quickstart: generate a small synthetic hospital log corpus, mine it
// with all three techniques, and compare against the ground truth.
//
//   ./quickstart [--scale=0.1] [--days=2] [--seed=7]

#include <cstdio>
#include <iostream>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "eval/dataset.h"
#include "eval/report.h"
#include "util/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 1. Build the simulated environment and generate logs.
  eval::DatasetConfig config;
  config.scenario.seed = static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  config.simulation.seed = config.scenario.seed + 1;
  config.simulation.scale = flags.GetDouble("scale", 0.1);
  config.simulation.num_days = static_cast<int>(flags.GetInt("days", 2));

  std::cout << "Generating logs (scale=" << config.simulation.scale
            << ", days=" << config.simulation.num_days << ") ...\n";
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << "  " << dataset.store.size() << " logs from "
            << dataset.store.num_sources() << " applications; "
            << dataset.summary.num_identified_sessions
            << " identified sessions; " << dataset.summary.context_logs
            << " logs carry user context\n";
  std::cout << "  ground truth: " << dataset.reference_pairs.size()
            << " interacting app pairs, " << dataset.reference_services.size()
            << " app-service dependencies\n\n";

  // 2. Mine the whole corpus with L1 + L2 + L3.
  core::PipelineConfig pipeline_config;
  core::MiningPipeline pipeline(dataset.vocabulary, pipeline_config);
  auto result_or = pipeline.Run(dataset.store, dataset.store.min_ts(),
                                dataset.store.max_ts() + 1);
  if (!result_or.ok()) {
    std::cerr << result_or.status() << "\n";
    return 1;
  }
  const core::PipelineResult& result = result_or.value();
  if (!result.all_ok()) {  // fail-safe runs report per-miner statuses
    std::cerr << result.first_error() << "\n";
    return 1;
  }

  // 3. Evaluate each technique against its reference model.
  const core::DependencyModel l1 =
      result.l1->Dependencies(dataset.store);
  const core::DependencyModel l2 =
      result.l2->Dependencies(dataset.store);
  const core::DependencyModel l3 =
      result.l3->Dependencies(dataset.store, dataset.vocabulary);

  auto report = [&](const char* name, const core::DependencyModel& model,
                    const core::DependencyModel& reference,
                    int64_t universe) {
    const core::ConfusionCounts counts =
        core::Evaluate(model, reference, universe);
    std::printf("%-3s  positives=%-4lld TP=%-4lld FP=%-4lld tp-ratio=%.2f "
                "recall=%.2f\n",
                name, static_cast<long long>(counts.positives()),
                static_cast<long long>(counts.true_positives),
                static_cast<long long>(counts.false_positives),
                counts.tp_ratio(), counts.recall());
  };
  report("L1", l1, dataset.reference_pairs, dataset.universe_pairs);
  report("L2", l2, dataset.reference_pairs, dataset.universe_pairs);
  report("L3", l3, dataset.reference_services, dataset.universe_services);

  std::cout << "\nL2 sessions: " << result.l2->session_stats.num_sessions
            << " (" << result.l2->num_bigrams << " bigrams, "
            << FormatDouble(result.l2->session_stats.assigned_fraction * 100,
                            1)
            << "% of logs assigned)\n";
  std::cout << "L3 scanned " << result.l3->logs_scanned << " logs, stopped "
            << result.l3->logs_stopped << " by stop patterns\n";
  return 0;
}
