// Live introspection of a streaming mining service under chaos: the
// main thread replays a simulated day through a service with a poison
// batch and a stalled epoch injected, while a second thread scrapes the
// service's UNIX-socket introspection endpoint — exactly what an
// external prober would do — printing every health transition it
// observes. At the end, tail query latency (p50/p99/p999 from the
// mergeable sketch), the OpenMetrics scrape, and any postmortem bundle
// the chaos produced are printed (DESIGN.md §14).
//
//   ./obs_introspect [--scale=0.05] [--seed=7]
//
// The socket speaks a newline protocol; while this runs you can also
// scrape it by hand:
//
//   echo HEALTH | socat - UNIX-CONNECT:/tmp/logmine_introspect_<pid>.sock

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "eval/dataset.h"
#include "obs/export.h"
#include "obs/introspect.h"
#include "obs/obs.h"
#include "obs/postmortem.h"
#include "serve/streaming_service.h"
#include "simulation/service_faults.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 1. One simulated day of HUG-style logs.
  eval::DatasetConfig dataset_config;
  dataset_config.scenario.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 7));
  dataset_config.simulation.seed = dataset_config.scenario.seed + 1;
  dataset_config.simulation.scale = flags.GetDouble("scale", 0.05);
  dataset_config.simulation.num_days = 1;
  auto dataset_or = eval::BuildDataset(dataset_config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();

  // 2. A service wearing the full observability kit: an obs context
  //    (journal + metrics + probe), a postmortem directory, and the
  //    introspection socket.
  const std::filesystem::path work_dir =
      std::filesystem::temp_directory_path() / "logmine_introspect_example";
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);
  const std::string socket_path =
      "/tmp/logmine_introspect_" + std::to_string(::getpid()) + ".sock";

  obs::ObsContext context;
  serve::ServiceConfig config;
  config.window.epoch_length = kMillisPerHour;
  config.window.window_epochs = 6;
  config.window.l1.minlogs = 6;
  config.window.vocabulary = dataset.vocabulary;
  config.entry_owner = dataset.entry_owner;
  config.max_queue_batches = 4;
  config.obs = &context;
  config.postmortem.dir = (work_dir / "postmortems").string();
  config.introspection_socket = socket_path;

  // A deliberately bad day: one undecodable batch, one stalled epoch.
  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/3, sim::ServiceFault::kPoisonBatch});
  plan.faults.push_back(
      {/*index=*/9, sim::ServiceFault::kStallEpoch, /*times=*/2});
  const sim::ServiceFaultInjector injector(plan);
  config.faults = &injector;

  auto service_or = serve::StreamingMiningService::Create(config);
  if (!service_or.ok()) {
    std::cerr << service_or.status() << "\n";
    return 1;
  }
  serve::StreamingMiningService& service = *service_or.value();
  std::cout << "Introspection socket: " << socket_path << "\n"
            << "Run id:               " << context.journal().run_id()
            << "\n\n";

  // 3. The external prober: a thread that knows nothing about this
  //    process except the socket path, scraping HEALTH and printing
  //    every transition.
  std::atomic<bool> stop_scraper{false};
  std::thread scraper([&] {
    std::string last;
    while (!stop_scraper.load()) {
      auto health = obs::IntrospectionQuery(socket_path, "HEALTH");
      if (health.ok()) {
        const std::string state =
            health.value().substr(0, health.value().find(' '));
        if (state != last) {
          std::cout << "  [scraper] health: "
                    << (last.empty() ? "(start)" : last) << " -> "
                    << health.value();
          last = state;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // 4. Replay the day hour by hour, querying the live model as we go so
  //    the query-latency sketch fills up.
  auto batches = serve::SplitIntoEpochBatches(
      dataset.store, dataset.day_begin(0), dataset.day_end(0),
      kMillisPerHour);
  if (!batches.ok()) {
    std::cerr << batches.status() << "\n";
    return 1;
  }
  const std::string target = dataset.entry_owner.empty()
                                 ? std::string("app")
                                 : dataset.entry_owner.begin()->second;
  int64_t queries = 0;
  for (const serve::EpochBatch& batch : batches.value()) {
    service.SubmitBatch(batch);
    (void)service.Step();
    for (int i = 0; i < 8; ++i) {
      if (service.WhatDependsOn(target).ok()) ++queries;
    }
  }
  int guard = 0;
  while (true) {
    auto step = service.Step();
    if (!step.ok() || step.value() == serve::StepOutcome::kIdle ||
        ++guard > 200) {
      break;
    }
  }
  stop_scraper.store(true);
  scraper.join();

  // 5. What the day looked like, from the metrics the scrape serves.
  const serve::ServiceStats stats = service.stats();
  std::cout << "\nDay done: " << stats.epochs_ingested
            << " epochs ingested, " << stats.batches_poisoned
            << " poisoned, " << stats.epochs_stalled << " stall retries, "
            << queries << " queries answered\n";

  const obs::MetricsSnapshot snapshot = context.metrics().Snapshot();
  if (const obs::MetricsSnapshot::Entry* query_ns = snapshot.Find(
          obs::MetricName(obs::Metric::kServeQueryNs))) {
    std::cout << "Query latency (sketch, count="
              << query_ns->sketch.count()
              << "): p50=" << query_ns->sketch.Quantile(0.5)
              << "ns p99=" << query_ns->sketch.Quantile(0.99)
              << "ns p999=" << query_ns->sketch.Quantile(0.999) << "ns\n";
  }

  auto metrics_text = obs::IntrospectionQuery(socket_path, "METRICS");
  if (metrics_text.ok()) {
    std::cout << "\nOpenMetrics scrape (first lines):\n";
    size_t shown = 0, at = 0;
    while (shown < 8 && at < metrics_text.value().size()) {
      const size_t end = metrics_text.value().find('\n', at);
      std::cout << "  " << metrics_text.value().substr(at, end - at)
                << "\n";
      at = end + 1;
      ++shown;
    }
  }

  // 6. The poisoned batch left a postmortem bundle behind — the file an
  //    operator (or CI) picks up after the process is gone.
  std::cout << "\nPostmortem bundles:\n";
  for (const auto& entry :
       std::filesystem::directory_iterator(config.postmortem.dir)) {
    auto bundle = obs::ReadPostmortemBundle(entry.path().string());
    if (!bundle.ok()) continue;
    std::cout << "  " << entry.path().filename().string() << ": reason="
              << bundle.value().reason << " span="
              << bundle.value().trigger_span << " tail="
              << bundle.value().journal_tail.size() << " lines\n";
  }

  service_or.value().reset();  // stops the introspection server
  std::filesystem::remove_all(work_dir);
  return 0;
}
