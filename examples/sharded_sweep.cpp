// Sharded sweep supervisor demo: partition a multi-day L1 sweep into
// (day × pair-range) shards, run them concurrently under seeded chaos,
// and show the three outcomes the supervisor distinguishes:
//
//   1. a fault-free run (the baseline bytes),
//   2. a recoverable-chaos run — injected kills, hangs, corrupt partial
//      models and slowdowns, all retried or hedged away — which must
//      produce byte-identical merged output, and
//   3. a degraded run with one permanently poisoned shard, which still
//      delivers a usable model annotated with exactly what is missing.
//
// Flags: --seed=1 --days=2 --scale=0.1 --ranges=3 --chaos (enable the
// recoverable-chaos pass) --coverage-out=coverage.json (write the
// degraded run's coverage report, e.g. as a CI artifact).
// Exits non-zero if any of the invariants above fails to hold.

#include <fstream>
#include <iostream>

#include "core/serialization.h"
#include "eval/dataset.h"
#include "eval/shard_supervisor.h"
#include "simulation/crash_injector.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int num_ranges = static_cast<int>(flags.GetInt("ranges", 3));

  eval::DatasetConfig dataset_config;
  dataset_config.scenario.seed = seed;
  dataset_config.simulation.seed = seed + 1;
  dataset_config.simulation.num_days =
      static_cast<int>(flags.GetInt("days", 2));
  dataset_config.simulation.scale = flags.GetDouble("scale", 0.1);
  auto dataset_or = eval::BuildDataset(dataset_config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << "Corpus: " << dataset.store.size() << " logs over "
            << dataset.num_days() << " days, sharded "
            << dataset.num_days() << "x" << num_ranges << "\n";

  core::L1Config l1;
  l1.minlogs = 8;  // support floor scaled to the reduced volume
  l1.slot_length = 2 * kMillisPerHour;

  eval::ShardSupervisorConfig supervisor;
  supervisor.num_ranges = num_ranges;
  supervisor.shard_deadline_ms = 2000;
  supervisor.retry.initial_backoff_ms = 1;
  supervisor.retry.max_backoff_ms = 5;
  supervisor.poll_ms = 1;

  auto describe = [](const char* label, const eval::ShardedSweepResult& run) {
    std::cout << label << ": " << eval::SweepOutcomeName(run.outcome) << ", "
              << run.merged.coverage.covered_cells() << "/"
              << run.merged.coverage.total_cells() << " shards, "
              << run.merged.model.size() << " dependencies; "
              << run.stats.attempts << " attempts, " << run.stats.failures
              << " failures, " << run.stats.retries << " retries, "
              << run.stats.hedges_launched << " hedges, "
              << run.stats.breaker_trips << " breaker trips\n";
  };

  // 1. Fault-free baseline.
  auto clean = eval::RunL1ShardedSweep(dataset, l1, supervisor);
  if (!clean.ok()) {
    std::cerr << "clean sweep failed: " << clean.status() << "\n";
    return 1;
  }
  describe("clean   ", clean.value());
  const std::string reference = core::MergedModelBytes(clean.value().merged);

  // 2. Recoverable chaos: same sweep, seeded transient faults. Must
  //    converge to the exact same bytes.
  if (flags.GetBool("chaos", true)) {
    Rng rng(seed);
    sim::ShardFaultPlanOptions chaos;
    chaos.max_faulty_shards = 3;
    chaos.max_times = 2;
    chaos.permanent_fraction = 0.0;
    const sim::ShardFaultPlan plan = sim::RandomShardFaultPlan(
        &rng, dataset.num_days(), num_ranges, chaos);
    for (const sim::ShardFaultSpec& spec : plan.faults) {
      std::cout << "  injecting " << sim::ShardFaultName(spec.fault)
                << " x" << spec.times << " into shard (" << spec.day << ", "
                << spec.range_index << ")\n";
    }
    sim::ShardFaultInjector injector(plan);
    eval::ShardSupervisorConfig chaotic = supervisor;
    chaotic.faults = &injector;
    auto survived = eval::RunL1ShardedSweep(dataset, l1, chaotic);
    if (!survived.ok()) {
      std::cerr << "chaos sweep failed: " << survived.status() << "\n";
      return 1;
    }
    describe("chaos   ", survived.value());
    if (core::MergedModelBytes(survived.value().merged) != reference) {
      std::cerr << "INVARIANT VIOLATED: recoverable chaos changed the "
                   "merged model bytes\n";
      return 1;
    }
    std::cout << "  chaos run is byte-identical to the clean run\n";
  }

  // 3. Degraded run: one shard permanently broken. The sweep must
  //    degrade gracefully and account for the loss exactly.
  sim::ShardFaultPlan poison_plan;
  poison_plan.faults.push_back({/*day=*/0, /*range_index=*/num_ranges - 1,
                                sim::ShardFault::kFailTransient,
                                sim::kShardFaultAlways});
  sim::ShardFaultInjector poison(poison_plan);
  eval::ShardSupervisorConfig degraded_config = supervisor;
  degraded_config.faults = &poison;
  auto degraded = eval::RunL1ShardedSweep(dataset, l1, degraded_config);
  if (!degraded.ok()) {
    std::cerr << "degraded sweep failed outright: " << degraded.status()
              << "\n";
    return 1;
  }
  describe("degraded", degraded.value());
  if (degraded.value().outcome != eval::SweepOutcome::kDegraded ||
      degraded.value().merged.coverage.MissingCells() !=
          poison.PermanentlyPoisoned()) {
    std::cerr << "INVARIANT VIOLATED: degraded run did not report exactly "
                 "the poisoned shard as missing\n";
    return 1;
  }
  std::cout << "  missing cells match the injected permanent fault; "
            << "the other " << degraded.value().merged.coverage.covered_cells()
            << " shards' dependencies survive\n";

  const std::string coverage_out = flags.GetString("coverage-out", "");
  if (!coverage_out.empty()) {
    std::ofstream out(coverage_out);
    out << degraded.value().merged.coverage.ToJson() << "\n";
    if (!out) {
      std::cerr << "failed to write " << coverage_out << "\n";
      return 1;
    }
    std::cout << "  coverage report written to " << coverage_out << "\n";
  }
  return 0;
}
