// Full hospital case study: reproduces the paper's §4 evaluation flow in
// one run — generate a week of logs, run each technique per day, print
// the daily figures and the 0.984-level median confidence intervals.
//
//   ./hospital_case_study [--scale=0.5] [--seed=...]

#include <iostream>

#include "eval/daily_runner.h"
#include "eval/dataset.h"
#include "eval/report.h"
#include "util/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  eval::DatasetConfig config;
  config.scenario.seed = static_cast<uint64_t>(flags.GetInt("seed", 20051206));
  config.simulation.seed = config.scenario.seed + 1;
  config.simulation.scale = flags.GetDouble("scale", 0.5);
  config.simulation.num_days = 7;

  std::cout << "== Geneva University Hospitals case study (synthetic) ==\n";
  auto dataset_or = eval::BuildDataset(config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << dataset.store.size() << " logs over 7 days; reference: "
            << dataset.reference_pairs.size() << " app pairs of "
            << dataset.universe_pairs << ", "
            << dataset.reference_services.size()
            << " app-service dependencies\n\n";

  // L1: logs as an activity measure.
  core::L1Config l1_config;
  l1_config.minlogs = static_cast<int64_t>(
      std::max(10.0, 30 * config.simulation.scale));
  auto l1 = eval::RunL1Daily(dataset, l1_config);
  if (!l1.ok()) {
    std::cerr << l1.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure("L1 — activity correlation", l1.value().series,
                         std::cout);
  if (auto ci = l1.value().TpRatioCi(0.98); ci.ok()) {
    std::cout << "median TP ratio " << eval::FormatCi(ci.value(), 2)
              << "\n\n";
  }

  // L2: co-occurrence statistics over user sessions.
  std::vector<core::SessionBuildStats> session_stats;
  auto l2 = eval::RunL2Daily(dataset, core::L2Config{}, &session_stats);
  if (!l2.ok()) {
    std::cerr << l2.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure("L2 — session co-occurrence (timeout 1s)",
                         l2.value().series, std::cout);
  if (auto ci = l2.value().TpRatioCi(0.98); ci.ok()) {
    std::cout << "median TP ratio " << eval::FormatCi(ci.value(), 2)
              << "\n\n";
  }

  // L3: free-text citations of the service directory.
  auto l3 = eval::RunL3Daily(dataset, core::L3Config{});
  if (!l3.ok()) {
    std::cerr << l3.status() << "\n";
    return 1;
  }
  eval::PrintDailyFigure("L3 — service-directory citations",
                         l3.value().series, std::cout);
  if (auto ci = l3.value().TpRatioCi(0.98); ci.ok()) {
    std::cout << "median TP ratio " << eval::FormatCi(ci.value(), 2) << "\n";
  }

  // The paper's §4.10 conclusion.
  std::cout << "\nAs at HUG: L3 is the production-grade solution; L1/L2 "
               "remain useful where no directory exists.\n";
  return 0;
}
