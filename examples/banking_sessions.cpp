// Beyond the hospital: the paper's discussion names online banking as a
// setting where "session information needs to be logged in order to have
// a complete trace of user activity" — ideal terrain for L2. This
// example builds a small custom banking topology through the public
// simulation API (no HUG preset), generates a day of logs, and mines it
// with L2 and L3.
//
//   ./banking_sessions [--seed=...]

#include <iostream>

#include "core/evaluation.h"
#include "core/l2_cooccurrence_miner.h"
#include "core/l3_text_miner.h"
#include "eval/dataset.h"
#include "simulation/simulator.h"
#include "util/cli.h"
#include "util/string_util.h"

namespace {

using namespace logmine;

// Builds a 9-component e-banking landscape by hand.
Status BuildBank(sim::Topology* topology, sim::ServiceDirectory* directory) {
  auto add_app = [&](std::string name, sim::Tier tier, std::string host,
                     sim::InvocationLogStyle style) {
    sim::Application app;
    app.name = std::move(name);
    app.tier = tier;
    app.host = std::move(host);
    app.invocation_style = style;
    app.background_rate_per_hour = tier == sim::Tier::kClient ? 20 : 90;
    topology->apps.push_back(std::move(app));
    return static_cast<int>(topology->apps.size()) - 1;
  };
  auto add_entry = [&](std::string id, int owner) -> Status {
    sim::ServiceEntry entry;
    entry.id = id;
    entry.server_host = topology->apps[static_cast<size_t>(owner)].host;
    entry.root_url = "https://" + entry.server_host + "/api/" + ToLower(id);
    LOGMINE_RETURN_IF_ERROR(directory->Add(entry));
    topology->apps[static_cast<size_t>(owner)].provided_entries.push_back(
        static_cast<int>(directory->size()) - 1);
    return Status::OK();
  };

  const int web = add_app("EBankingWeb", sim::Tier::kClient, "",
                          sim::InvocationLogStyle::kArrowUrl);
  const int mobile = add_app("MobileApp", sim::Tier::kClient, "",
                             sim::InvocationLogStyle::kKeyValue);
  const int accounts = add_app("AccountsSrv", sim::Tier::kService,
                               "app01.bank.example",
                               sim::InvocationLogStyle::kParenGroup);
  const int payments = add_app("PaymentsSrv", sim::Tier::kService,
                               "app02.bank.example",
                               sim::InvocationLogStyle::kBracketedServer);
  const int cards = add_app("CardsSrv", sim::Tier::kService,
                            "app03.bank.example",
                            sim::InvocationLogStyle::kProseCall);
  const int fraud = add_app("FraudCheck", sim::Tier::kService,
                            "app04.bank.example",
                            sim::InvocationLogStyle::kKeyValue);
  const int ledger = add_app("LedgerDB", sim::Tier::kBackend,
                             "db01.bank.example",
                             sim::InvocationLogStyle::kParenGroup);
  const int notify = add_app("NotifyGateway", sim::Tier::kService,
                             "app05.bank.example",
                             sim::InvocationLogStyle::kParenGroup);
  const int batch = add_app("EodBatch", sim::Tier::kDaemon,
                            "batch01.bank.example",
                            sim::InvocationLogStyle::kKeyValue);

  LOGMINE_RETURN_IF_ERROR(add_entry("ACCSRV", accounts));
  LOGMINE_RETURN_IF_ERROR(add_entry("PAYSRV", payments));
  LOGMINE_RETURN_IF_ERROR(add_entry("CARDSRV", cards));
  LOGMINE_RETURN_IF_ERROR(add_entry("FRAUDSRV", fraud));
  LOGMINE_RETURN_IF_ERROR(add_entry("LEDGER", ledger));
  LOGMINE_RETURN_IF_ERROR(add_entry("NOTIFYGW", notify));

  auto add_edge = [&](int caller, int callee, double weight, bool async) {
    sim::InvocationEdge edge;
    edge.caller = caller;
    edge.callee = callee;
    const auto& provided =
        topology->apps[static_cast<size_t>(callee)].provided_entries;
    edge.cited_entry = provided.empty() ? -1 : provided[0];
    edge.true_entry = edge.cited_entry;
    edge.weight = weight;
    edge.asynchronous = async;
    topology->edges.push_back(edge);
    return static_cast<int>(topology->edges.size()) - 1;
  };
  const int e_web_acc = add_edge(web, accounts, 3.0, false);
  const int e_web_pay = add_edge(web, payments, 1.5, false);
  const int e_mob_acc = add_edge(mobile, accounts, 2.0, false);
  const int e_mob_card = add_edge(mobile, cards, 1.0, false);
  const int e_pay_fraud = add_edge(payments, fraud, 1.0, false);
  const int e_pay_ledger = add_edge(payments, ledger, 1.0, false);
  const int e_acc_ledger = add_edge(accounts, ledger, 1.0, false);
  const int e_pay_notify = add_edge(payments, notify, 0.7, true);
  const int e_batch_ledger = add_edge(batch, ledger, 1.0, false);
  const int e_batch_acc = add_edge(batch, accounts, 0.8, false);

  // Use cases: check balance, make payment (with fraud check + async
  // notification), card overview, end-of-day batch.
  sim::UseCase balance;
  balance.name = "check-balance";
  balance.root_app = web;
  balance.steps.push_back({e_web_acc, {{e_acc_ledger, {}}}});
  balance.weight = 3.0;
  topology->use_cases.push_back(balance);

  sim::UseCase payment;
  payment.name = "make-payment";
  payment.root_app = web;
  payment.steps.push_back(
      {e_web_pay,
       {{e_pay_fraud, {}}, {e_pay_ledger, {}}, {e_pay_notify, {}}}});
  payment.weight = 1.5;
  topology->use_cases.push_back(payment);

  sim::UseCase mobile_balance;
  mobile_balance.name = "mobile-balance";
  mobile_balance.root_app = mobile;
  mobile_balance.steps.push_back({e_mob_acc, {{e_acc_ledger, {}}}});
  mobile_balance.weight = 2.0;
  topology->use_cases.push_back(mobile_balance);

  sim::UseCase cards_overview;
  cards_overview.name = "card-overview";
  cards_overview.root_app = mobile;
  cards_overview.steps.push_back({e_mob_card, {}});
  cards_overview.weight = 1.0;
  topology->use_cases.push_back(cards_overview);

  sim::UseCase eod;
  eod.name = "end-of-day";
  eod.root_app = batch;
  eod.steps.push_back({e_batch_ledger, {}});
  eod.steps.push_back({e_batch_acc, {}});
  topology->batch_use_cases.push_back(eod);

  return topology->Validate(*directory);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logmine;
  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  sim::Topology topology;
  sim::ServiceDirectory directory;
  if (Status s = BuildBank(&topology, &directory); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  sim::SimulationConfig config;
  config.num_days = 1;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.scale = 1.0;
  config.anon_executions_per_weekday = 4000;
  config.workload.sessions_per_weekday = 400;  // banking: session-rich
  config.workload.num_users = 500;
  config.batch_executions_per_day = 60;

  sim::Simulator simulator(topology, directory, config);
  LogStore store;
  sim::SimulationSummary summary;
  if (Status s = simulator.Run(&store, &summary); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "generated " << store.size() << " logs, "
            << summary.num_identified_sessions << " sessions\n\n";

  // Ground truth for evaluation.
  const core::DependencyModel truth(topology.InteractionPairs());

  // L2 over the session-bearing logs.
  core::L2Config l2_config;
  l2_config.min_cooccurrence = 10;
  core::L2CooccurrenceMiner l2(l2_config);
  auto mined = l2.Mine(store, store.min_ts(), store.max_ts() + 1);
  if (!mined.ok()) {
    std::cerr << mined.status() << "\n";
    return 1;
  }
  const core::DependencyModel found = mined.value().Dependencies(store);
  const core::ConfusionCounts counts = core::Evaluate(
      found, truth, static_cast<int64_t>(topology.apps.size() *
                                         (topology.apps.size() - 1) / 2));
  std::cout << "L2 discovered dependency model ("
            << mined.value().num_bigrams << " bigrams):\n"
            << found.ToString() << "precision " << counts.tp_ratio()
            << ", recall " << counts.recall() << "\n";

  // L3 against the banking directory.
  core::L3TextMiner l3(eval::VocabularyFrom(directory), core::L3Config{});
  auto l3_mined = l3.Mine(store, store.min_ts(), store.max_ts() + 1);
  if (!l3_mined.ok()) {
    std::cerr << l3_mined.status() << "\n";
    return 1;
  }
  std::cout << "\nL3 discovered app -> service dependencies:\n"
            << l3_mined.value()
                   .Dependencies(store, eval::VocabularyFrom(directory))
                   .ToString();
  return 0;
}
