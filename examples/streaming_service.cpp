// The streaming mining service end to end: feed a simulated day of
// logs hour by hour, watch generations publish, query the live model,
// then turn on chaos — poison, stalls, a crash mid-publish — and watch
// the service shed, quarantine, stale-serve and recover instead of
// falling over (DESIGN.md §13).
//
//   ./streaming_service [--scale=0.05] [--seed=7]

#include <filesystem>
#include <iostream>

#include "eval/dataset.h"
#include "eval/stream_replay.h"
#include "serve/streaming_service.h"
#include "simulation/service_faults.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace logmine;

  CliFlags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 1. One simulated day of HUG-style logs.
  eval::DatasetConfig dataset_config;
  dataset_config.scenario.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 7));
  dataset_config.simulation.seed = dataset_config.scenario.seed + 1;
  dataset_config.simulation.scale = flags.GetDouble("scale", 0.05);
  dataset_config.simulation.num_days = 1;
  auto dataset_or = eval::BuildDataset(dataset_config);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const eval::Dataset dataset = std::move(dataset_or).value();
  std::cout << "Corpus: " << dataset.store.size() << " logs over "
            << dataset.num_days() << " day(s)\n\n";

  auto base_config = [&] {
    serve::ServiceConfig config;
    config.window.epoch_length = kMillisPerHour;
    config.window.window_epochs = 6;
    config.window.l1.minlogs = 6;
    config.window.vocabulary = dataset.vocabulary;
    config.entry_owner = dataset.entry_owner;
    config.max_queue_batches = 4;
    return config;
  };

  // 2. The calm day: every hour ingests, every hour publishes.
  {
    auto service_or = serve::StreamingMiningService::Create(base_config());
    if (!service_or.ok()) {
      std::cerr << service_or.status() << "\n";
      return 1;
    }
    serve::StreamingMiningService& service = *service_or.value();
    auto replay = eval::ReplayDatasetStream(dataset, &service);
    if (!replay.ok()) {
      std::cerr << replay.status() << "\n";
      return 1;
    }
    const serve::HealthReport health = service.Health();
    std::cout << "Calm replay: " << replay.value().processed
              << " epochs processed, generation " << health.generation
              << ", health " << serve::HealthStateName(health.state)
              << "\n";

    // Query the live model: who is hit when a provider dies?
    if (!dataset.entry_owner.empty()) {
      const std::string provider = dataset.entry_owner.begin()->second;
      auto impact = service.ImpactOf(provider);
      if (impact.ok()) {
        std::cout << "ImpactOf(" << provider << ") [generation "
                  << impact.value().generation << "]:";
        for (const std::string& component : impact.value().components) {
          std::cout << " " << component;
        }
        std::cout << "\n\n";
      }
    }
  }

  // 3. A bad day: a poison batch, a stalled epoch, and a crash right in
  //    the middle of a publish — all deterministic, all survivable.
  const std::filesystem::path state_dir =
      std::filesystem::temp_directory_path() / "logmine_streaming_example";
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  sim::ServiceFaultPlan plan;
  plan.faults.push_back({/*index=*/3, sim::ServiceFault::kPoisonBatch});
  plan.faults.push_back(
      {/*index=*/8, sim::ServiceFault::kStallEpoch, /*times=*/2});
  plan.faults.push_back({/*index=*/14, sim::ServiceFault::kCrashMidPublish});
  const sim::ServiceFaultInjector injector(plan);

  serve::ServiceConfig chaos_config = base_config();
  chaos_config.state_path = (state_dir / "state.snapshot").string();
  chaos_config.faults = &injector;

  auto service_or = serve::StreamingMiningService::Create(chaos_config);
  if (!service_or.ok()) {
    std::cerr << service_or.status() << "\n";
    return 1;
  }
  auto replay =
      eval::ReplayDatasetStream(dataset, service_or.value().get());
  if (replay.ok()) {
    std::cerr << "expected the injected crash to surface\n";
    return 1;
  }
  std::cout << "Chaos replay died as planned: " << replay.status() << "\n";
  {
    const serve::ServiceStats stats = service_or.value()->stats();
    std::cout << "  before dying: " << stats.epochs_ingested
              << " epochs ingested, " << stats.batches_poisoned
              << " poisoned, " << stats.epochs_stalled << " stall retries, "
              << stats.batches_shed << " shed\n";
  }
  service_or.value().reset();

  // 4. Recovery: rebuild from the snapshot and replay the whole day
  //    blindly — already-ingested hours bounce off the watermark, the
  //    rest continue exactly where the dead process stopped.
  auto recovered_or = serve::StreamingMiningService::Create(chaos_config);
  if (!recovered_or.ok()) {
    std::cerr << recovered_or.status() << "\n";
    return 1;
  }
  serve::StreamingMiningService& recovered = *recovered_or.value();
  std::cout << "Recovered from snapshot: " << std::boolalpha
            << recovered.recovered() << ", serving generation "
            << recovered.Health().generation << " again\n";
  auto resumed = eval::ReplayDatasetStream(dataset, &recovered);
  if (!resumed.ok()) {
    std::cerr << resumed.status() << "\n";
    return 1;
  }
  const serve::HealthReport final_health = recovered.Health();
  std::cout << "Resumed replay: " << resumed.value().rejected
            << " already-ingested hours rejected, "
            << resumed.value().processed
            << " fresh epochs processed, final generation "
            << final_health.generation << ", health "
            << serve::HealthStateName(final_health.state) << "\n";
  std::filesystem::remove_all(state_dir);
  return 0;
}
